"""Unit tests for events and quality attributes."""

import pytest

from repro.middleware.attributes import ATTR_COMPRESSION_METHOD, QualityAttributes
from repro.middleware.events import Event


class TestEvent:
    def test_defaults(self):
        event = Event(payload=b"data")
        assert event.size == 4
        assert event.attributes == {}
        assert event.sequence == 0

    def test_with_payload_preserves_and_extends_attributes(self):
        event = Event(payload=b"x", attributes={"a": 1})
        updated = event.with_payload(b"yy", b=2)
        assert updated.payload == b"yy"
        assert updated.attributes == {"a": 1, "b": 2}
        # original untouched (immutability)
        assert event.payload == b"x"
        assert event.attributes == {"a": 1}

    def test_with_attributes_overrides(self):
        event = Event(payload=b"", attributes={"a": 1})
        assert event.with_attributes(a=2).attributes == {"a": 2}

    def test_frozen(self):
        event = Event(payload=b"x")
        with pytest.raises(AttributeError):
            event.payload = b"y"  # type: ignore[misc]


class TestQualityAttributes:
    def test_set_get(self):
        attrs = QualityAttributes()
        attrs.set(ATTR_COMPRESSION_METHOD, "huffman")
        assert attrs.get(ATTR_COMPRESSION_METHOD) == "huffman"

    def test_get_default(self):
        assert QualityAttributes().get("missing", 42) == 42

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            QualityAttributes().set("", 1)

    def test_snapshot_is_copy(self):
        attrs = QualityAttributes()
        attrs.set("k", 1)
        snap = attrs.snapshot()
        snap["k"] = 99
        assert attrs.get("k") == 1

    def test_listener_notified(self):
        attrs = QualityAttributes()
        seen = []
        attrs.subscribe(lambda name, value: seen.append((name, value)))
        attrs.set("x", 7)
        assert seen == [("x", 7)]

    def test_unsubscribe(self):
        attrs = QualityAttributes()
        seen = []
        cancel = attrs.subscribe(lambda n, v: seen.append(v))
        cancel()
        attrs.set("x", 1)
        assert seen == []
        cancel()  # idempotent

    def test_cross_layer_flow(self):
        """Consumer decision propagates to producer through attributes (§3.1)."""
        attrs = QualityAttributes()
        producer_view = {}
        attrs.subscribe(lambda n, v: producer_view.__setitem__(n, v))
        attrs.set(ATTR_COMPRESSION_METHOD, "burrows-wheeler")
        assert producer_view[ATTR_COMPRESSION_METHOD] == "burrows-wheeler"
