"""Middleware x fabric wiring: handlers, channels, transport, TCP shutdown."""

import threading
import time

from repro.core.engine import CodecExecutor
from repro.fabric.broker import EventFabric
from repro.fabric.cache import BlockCache
from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler
from repro.middleware.tcp import ChannelServer, RemoteChannel
from repro.middleware.transport import TransportBridge
from repro.netsim.clock import VirtualClock
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS, SimulatedLink

PAYLOAD = (b"shared block cache wiring " * 64)[:1024]


def modeled_executor():
    return CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)


class CountingExecutor(CodecExecutor):
    def __init__(self):
        super().__init__(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True)
        self.runs = 0

    def compress(self, method, block, codec=None):
        self.runs += 1
        return super().compress(method, block, codec=codec)


class TestHandlerCache:
    def test_handlers_share_one_codec_run_through_the_cache(self):
        executor = CountingExecutor()
        cache = BlockCache()
        first = CompressionHandler("huffman", executor=executor, cache=cache)
        second = CompressionHandler("huffman", executor=executor, cache=cache)
        event = Event(payload=PAYLOAD, channel_id="a", sequence=1, timestamp=0.0)
        out_first = first(event)
        out_second = second(event)
        assert executor.runs == 1
        assert second.cache_hits == 1
        assert out_second.payload == out_first.payload
        assert out_second.attributes == out_first.attributes

    def test_cached_output_identical_to_uncached(self):
        event = Event(payload=PAYLOAD, channel_id="a", sequence=1, timestamp=0.0)
        plain = CompressionHandler("lempel-ziv", executor=modeled_executor())(event)
        cached_handler = CompressionHandler(
            "lempel-ziv", executor=modeled_executor(), cache=BlockCache()
        )
        assert cached_handler(event).payload == plain.payload
        assert cached_handler(event).attributes == plain.attributes

    def test_params_separate_cache_configurations(self):
        executor = CountingExecutor()
        cache = BlockCache()
        a = CompressionHandler(
            "huffman", executor=executor, cache=cache, params={"level": 6}
        )
        b = CompressionHandler(
            "huffman", executor=executor, cache=cache, params={"level": 9}
        )
        c = CompressionHandler(
            "huffman", executor=executor, cache=cache, params={"level": 6.0}
        )
        event = Event(payload=PAYLOAD, channel_id="a", sequence=1, timestamp=0.0)
        a(event)
        b(event)
        c(event)  # canonically equal to a's params -> hit
        assert executor.runs == 2
        assert c.cache_hits == 1


class TestChannelBinding:
    def test_bound_channel_delivers_identically(self):
        direct = []
        routed = []
        unbound = EventChannel("feed/x")
        unbound.subscribe(direct.append)
        bound = EventChannel("feed/x")
        bound.subscribe(routed.append)
        bound.bind_fabric(EventFabric(shards=4))
        for i in range(4):
            event = Event(payload=bytes([i]) * 64)
            unbound.submit(event)
            bound.submit(event)
        assert [e.payload for e in routed] == [e.payload for e in direct]
        assert [e.sequence for e in routed] == [e.sequence for e in direct]

    def test_unbind_restores_direct_dispatch(self):
        channel = EventChannel("feed/x")
        got = []
        channel.subscribe(got.append)
        fabric = EventFabric(shards=2, mode="threads")
        channel.bind_fabric(fabric)
        channel.submit(Event(payload=b"a"))
        assert fabric.flush(timeout=5.0)
        fabric.close()
        channel.unbind_fabric()
        channel.submit(Event(payload=b"b"))  # would raise if still routed
        assert [e.payload for e in got] == [b"a", b"b"]


class TestTransportFabric:
    def test_bridge_defers_delivery_through_the_fabric(self):
        deferred = []

        class RecordingFabric(EventFabric):
            def defer(self, channel_id, thunk):
                deferred.append(channel_id)
                super().defer(channel_id, thunk)

        clock = VirtualClock()
        bridge = TransportBridge(
            SimulatedLink(PAPER_LINKS["100mbit"], seed=1),
            clock,
            fabric=RecordingFabric(shards=4),
        )
        local = EventChannel("feed/bridge")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        local.submit(Event(payload=PAYLOAD))
        assert deferred == ["feed/bridge"]
        assert len(received) == 1
        assert received[0].payload == PAYLOAD
        assert clock.now() > 0.0


class TestServerShutdown:
    def test_close_joins_accept_and_reader_threads(self):
        server = ChannelServer()
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        clients = [RemoteChannel(host, port, "feed") for _ in range(3)]
        try:
            channel.submit(Event(payload=b"warm"))
            for client in clients:
                assert client.wait_for(1)
            with server._lock:
                reader_threads = [t for t, _ in server._connections]
            assert len(reader_threads) == 3
            assert all(t.is_alive() for t in reader_threads)
            server.close()
            # Satellite contract: close() joins every per-connection
            # reader thread (with a timeout), the accept thread, and the
            # owned fabric's shard loops — nothing left running.
            assert not server._accept_thread.is_alive()
            for thread in reader_threads:
                assert not thread.is_alive()
            assert server._connections == []
            assert all(not t.is_alive() for t in server.fabric._threads)
        finally:
            for client in clients:
                client.close()

    def test_close_is_idempotent_and_detaches_channels(self):
        server = ChannelServer()
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        client = RemoteChannel(host, port, "feed")
        try:
            channel.submit(Event(payload=b"one"))
            assert client.wait_for(1)
            server.close()
            server.close()
            # The offer tap was cancelled: submitting after shutdown must
            # not route into the closed fabric (which would raise).
            channel.submit(Event(payload=b"two"))
        finally:
            client.close()

    def test_shared_fabric_not_closed_with_server(self):
        fabric = EventFabric(shards=2, mode="threads")
        server = ChannelServer(fabric=fabric)
        server.close()
        # A caller-owned fabric outlives the server.
        fabric.publish  # still usable:
        fabric.defer("feed", lambda: None)
        assert fabric.flush(timeout=5.0)
        fabric.close()

    def test_fabric_fanout_shares_frames_across_clients(self):
        registry_free_server = ChannelServer(shards=2)
        channel = EventChannel("feed")
        registry_free_server.offer(channel)
        host, port = registry_free_server.address
        clients = [RemoteChannel(host, port, "feed") for _ in range(4)]
        try:
            for i in range(6):
                channel.submit(Event(payload=bytes([i]) * 256, attributes={"i": i}))
            for client in clients:
                assert client.wait_for(6)
            # One fabric event per submit, four deliveries each.
            assert registry_free_server.fabric.events_published == 6
            assert registry_free_server.fabric.deliveries_total == 24
        finally:
            for client in clients:
                client.close()
            registry_free_server.close()
