"""Unit tests for event channels and derivation."""

import pytest

from repro.middleware.channels import ChannelError, EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import FilterHandler, TapHandler


def collect(channel):
    received = []
    channel.subscribe(received.append)
    return received


class TestSubscription:
    def test_delivery(self):
        channel = EventChannel("c")
        received = collect(channel)
        channel.submit(Event(payload=b"a"))
        assert len(received) == 1
        assert received[0].payload == b"a"

    def test_multiple_subscribers_each_receive(self):
        channel = EventChannel("c")
        first = collect(channel)
        second = collect(channel)
        channel.submit(Event(payload=b"x"))
        assert len(first) == len(second) == 1

    def test_cancel_stops_delivery(self):
        channel = EventChannel("c")
        received = []
        subscription = channel.subscribe(received.append)
        subscription.cancel()
        channel.submit(Event(payload=b"x"))
        assert received == []
        assert channel.subscriber_count == 0

    def test_cancel_idempotent(self):
        channel = EventChannel("c")
        subscription = channel.subscribe(lambda e: None)
        subscription.cancel()
        subscription.cancel()

    def test_sequence_numbers_assigned(self):
        channel = EventChannel("c")
        received = collect(channel)
        channel.submit(Event(payload=b"1"))
        channel.submit(Event(payload=b"2"))
        assert [e.sequence for e in received] == [1, 2]

    def test_channel_id_stamped(self):
        channel = EventChannel("my-channel")
        received = collect(channel)
        channel.submit(Event(payload=b"x"))
        assert received[0].channel_id == "my-channel"

    def test_empty_channel_id_rejected(self):
        with pytest.raises(ChannelError):
            EventChannel("")


class TestDerivation:
    def test_derived_channel_receives_transformed(self):
        channel = EventChannel("base")
        derived = channel.derive(lambda e: e.with_payload(e.payload.upper()))
        received = collect(derived)
        channel.submit(Event(payload=b"abc"))
        assert received[0].payload == b"ABC"

    def test_derived_without_subscribers_not_computed(self):
        channel = EventChannel("base")
        tap = TapHandler()
        channel.derive(tap)  # no subscribers below
        channel.submit(Event(payload=b"x"))
        assert tap.events == []  # handler never ran

    def test_handler_runs_once_subscribed(self):
        channel = EventChannel("base")
        tap = TapHandler()
        derived = channel.derive(tap)
        collect(derived)
        channel.submit(Event(payload=b"x"))
        assert len(tap.events) == 1

    def test_filter_handler_drops(self):
        channel = EventChannel("base")
        derived = channel.derive(FilterHandler(lambda e: e.size > 2))
        received = collect(derived)
        channel.submit(Event(payload=b"x"))
        channel.submit(Event(payload=b"xyz"))
        assert [e.payload for e in received] == [b"xyz"]

    def test_chained_derivation(self):
        channel = EventChannel("base")
        upper = channel.derive(lambda e: e.with_payload(e.payload.upper()))
        doubled = upper.derive(lambda e: e.with_payload(e.payload * 2))
        received = collect(doubled)
        channel.submit(Event(payload=b"ab"))
        assert received[0].payload == b"ABAB"

    def test_default_derived_ids(self):
        channel = EventChannel("base")
        derived = channel.derive(lambda e: e)
        assert derived.channel_id.startswith("base/derived-")

    def test_drop_derived(self):
        channel = EventChannel("base")
        derived = channel.derive(lambda e: e)
        received = collect(derived)
        channel.drop_derived(derived)
        channel.submit(Event(payload=b"x"))
        assert received == []
        assert derived not in channel.derived_channels

    def test_has_listeners_transitive(self):
        channel = EventChannel("base")
        middle = channel.derive(lambda e: e)
        leaf = middle.derive(lambda e: e)
        assert not channel.has_listeners()
        collect(leaf)
        assert channel.has_listeners()

    def test_mid_delivery_resubscribe_no_duplicates(self):
        """A consumer switching derivations mid-delivery gets each event once."""
        channel = EventChannel("base")
        a = channel.derive(lambda e: e.with_attributes(via="a"))
        b = channel.derive(lambda e: e.with_attributes(via="b"))
        received = []
        state = {}

        def on_event(event):
            received.append(event)
            # switch to b upon first delivery through a
            if event.attributes.get("via") == "a":
                state["sub_a"].cancel()
                state["sub_b"] = b.subscribe(on_event)

        state["sub_a"] = a.subscribe(on_event)
        channel.submit(Event(payload=b"1"))
        assert len(received) == 1
        channel.submit(Event(payload=b"2"))
        assert len(received) == 2
        assert received[1].attributes["via"] == "b"

    def test_counters(self):
        channel = EventChannel("base")
        collect(channel)
        channel.submit(Event(payload=b"1234"))
        assert channel.submitted == 1
        assert channel.delivered_bytes == 4
