"""Unit tests for out-of-order delivery and ordered reassembly."""

import pytest

from repro.data.commercial import CommercialDataGenerator
from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler, DecompressionHandler
from repro.middleware.reassembly import OrderedReassembly, ReorderingBridge
from repro.netsim.clock import VirtualClock
from repro.netsim.link import make_link


def event(sequence, payload=b"x"):
    return Event(payload=payload, sequence=sequence)


class TestOrderedReassembly:
    def test_in_order_passthrough(self):
        released = []
        buffer = OrderedReassembly(released.append)
        for seq in (1, 2, 3):
            buffer.push(event(seq))
        assert [e.sequence for e in released] == [1, 2, 3]
        assert buffer.pending == 0

    def test_out_of_order_buffered_and_released(self):
        released = []
        buffer = OrderedReassembly(released.append)
        for seq in (2, 3, 1):
            buffer.push(event(seq))
        assert [e.sequence for e in released] == [1, 2, 3]

    def test_large_shuffle(self):
        import random

        released = []
        buffer = OrderedReassembly(released.append)
        sequences = list(range(1, 101))
        random.Random(7).shuffle(sequences)
        for seq in sequences:
            buffer.push(event(seq))
        assert [e.sequence for e in released] == list(range(1, 101))
        assert buffer.gaps == 0

    def test_duplicate_dropped(self):
        released = []
        buffer = OrderedReassembly(released.append)
        buffer.push(event(1))
        buffer.push(event(1))
        buffer.push(event(2))
        assert [e.sequence for e in released] == [1, 2]

    def test_gap_declared_on_overflow(self):
        released = []
        buffer = OrderedReassembly(released.append, max_pending=3)
        for seq in (2, 3, 4, 5):  # sequence 1 never arrives
            buffer.push(event(seq))
        assert [e.sequence for e in released] == [2, 3, 4, 5]
        assert buffer.gaps == 1

    def test_flush_reports_missing(self):
        released = []
        buffer = OrderedReassembly(released.append)
        buffer.push(event(1))
        buffer.push(event(4))
        buffer.push(event(6))
        missing = buffer.flush()
        assert missing == [2, 3, 5]
        assert [e.sequence for e in released] == [1, 4, 6]

    def test_custom_first_sequence(self):
        released = []
        buffer = OrderedReassembly(released.append, first_sequence=10)
        buffer.push(event(10))
        assert released

    def test_invalid_max_pending(self):
        with pytest.raises(ValueError):
            OrderedReassembly(lambda e: None, max_pending=0)


class TestReorderingBridge:
    def _world(self, window=4, seed=3):
        clock = VirtualClock()
        bridge = ReorderingBridge(
            make_link("100mbit", seed=1), clock, window=window, seed=seed
        )
        local = EventChannel("src")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        return bridge, local, received

    def test_everything_arrives_after_close(self):
        bridge, local, received = self._world()
        for i in range(20):
            local.submit(Event(payload=bytes([i])))
        bridge.close()
        assert len(received) == 20
        assert sorted(e.payload[0] for e in received) == list(range(20))

    def test_order_is_perturbed(self):
        bridge, local, received = self._world(window=6)
        for i in range(30):
            local.submit(Event(payload=bytes([i])))
        bridge.close()
        arrival = [e.sequence for e in received]
        assert arrival != sorted(arrival)

    def test_early_delivery_bounded_by_window(self):
        bridge, local, received = self._world(window=4)
        for i in range(50):
            local.submit(Event(payload=bytes([i])))
        bridge.close()
        for position, e in enumerate(received):
            # the k-th delivery must come from the first k+window submissions
            # (an event can linger arbitrarily, but cannot arrive early by
            # more than the buffer size)
            assert (e.sequence - 1) <= position + 4

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ReorderingBridge(make_link("1gbit"), VirtualClock(), window=0)


class TestCompressedOutOfOrderStream:
    def test_burrows_wheeler_blocks_survive_reordering(self):
        """The §2.4 scenario: BW-compressed blocks delivered out of order
        decompress independently and reassemble into the original stream."""
        data_blocks = list(CommercialDataGenerator(seed=8).stream(16 * 1024, 12))

        clock = VirtualClock()
        bridge = ReorderingBridge(
            make_link("100mbit", seed=2), clock, window=5, seed=11
        )
        source = EventChannel("stream")
        compressed = source.derive(CompressionHandler("burrows-wheeler"))
        mirror = bridge.export(compressed)

        decompress = DecompressionHandler()
        restored: list = []
        reassembly = OrderedReassembly(lambda e: restored.append(decompress(e).payload))
        mirror.subscribe(reassembly.push)

        for block in data_blocks:
            source.submit(Event(payload=block))
        bridge.close()

        assert b"".join(restored) == b"".join(data_blocks)
        assert reassembly.gaps == 0
