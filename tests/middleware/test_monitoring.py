"""Unit tests for channel quality monitoring."""

import pytest

from repro.data.commercial import CommercialDataGenerator
from repro.middleware.attributes import QualityAttributes
from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler
from repro.middleware.monitoring import ChannelMonitor
from repro.middleware.transport import TransportBridge
from repro.netsim.clock import VirtualClock
from repro.netsim.link import make_link


class TestChannelMonitor:
    def test_empty_snapshot(self):
        channel = EventChannel("c")
        monitor = ChannelMonitor(channel)
        quality = monitor.snapshot()
        assert quality.events == 0
        assert quality.compression_ratio == 1.0

    def test_counts_events(self):
        channel = EventChannel("c")
        monitor = ChannelMonitor(channel)
        for _ in range(5):
            channel.submit(Event(payload=b"x" * 100))
        assert monitor.total_events == 5
        assert monitor.snapshot().events == 5

    def test_event_rate_uses_clock(self):
        clock = VirtualClock()
        channel = EventChannel("c")
        monitor = ChannelMonitor(channel, clock=clock)
        for _ in range(5):
            channel.submit(Event(payload=b"x"))
            clock.advance(2.0)
        quality = monitor.snapshot()
        assert quality.event_rate == pytest.approx(0.5, rel=0.01)

    def test_window_bounds_samples(self):
        channel = EventChannel("c")
        monitor = ChannelMonitor(channel, window=4)
        for _ in range(10):
            channel.submit(Event(payload=b"x"))
        assert monitor.snapshot().events == 4
        assert monitor.total_events == 10

    def test_publishes_to_attributes(self):
        attributes = QualityAttributes()
        channel = EventChannel("feed")
        ChannelMonitor(channel, attributes=attributes)
        channel.submit(Event(payload=b"data"))
        published = attributes.get("quality.feed")
        assert published is not None
        assert published["events"] == 1

    def test_publish_every_batches(self):
        attributes = QualityAttributes()
        updates = []
        attributes.subscribe(lambda n, v: updates.append(n))
        channel = EventChannel("feed")
        ChannelMonitor(channel, attributes=attributes, publish_every=3)
        for _ in range(7):
            channel.submit(Event(payload=b"x"))
        assert len(updates) == 2  # after events 3 and 6

    def test_detach_stops_observing(self):
        channel = EventChannel("c")
        monitor = ChannelMonitor(channel)
        monitor.detach()
        channel.submit(Event(payload=b"x"))
        assert monitor.total_events == 0

    def test_validation(self):
        channel = EventChannel("c")
        with pytest.raises(ValueError):
            ChannelMonitor(channel, window=0)
        with pytest.raises(ValueError):
            ChannelMonitor(channel, publish_every=0)

    def test_end_to_end_compression_ratio(self, commercial_block):
        """Monitoring a bridged, compressed channel sees wire-level truth."""
        clock = VirtualClock()
        bridge = TransportBridge(make_link("100mbit", seed=1), clock)
        source = EventChannel("src")
        compressed = source.derive(CompressionHandler("lempel-ziv"))
        mirror = bridge.export(compressed)
        monitor = ChannelMonitor(mirror, clock=clock)
        for block in CommercialDataGenerator(seed=12).stream(16 * 1024, 6):
            source.submit(Event(payload=block))
        quality = monitor.snapshot()
        assert quality.events == 6
        assert quality.compression_ratio < 0.7
        assert quality.mean_transport_seconds > 0
        assert quality.goodput > quality.wire_throughput
