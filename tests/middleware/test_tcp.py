"""Integration tests for the real TCP transport (loopback)."""

import socket
import time

import pytest

from repro.data.commercial import CommercialDataGenerator
from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler, DecompressionHandler
from repro.middleware.tcp import ChannelServer, RemoteChannel
from repro.netsim.faults import RetryPolicy
from repro.obs.metrics import MetricsRegistry


@pytest.fixture()
def server():
    instance = ChannelServer()
    yield instance
    instance.close()


class TestTcpTransport:
    def test_events_cross_real_sockets(self, server):
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(host, port, "feed")
        received = []
        remote.mirror.subscribe(received.append)
        try:
            for i in range(5):
                channel.submit(Event(payload=bytes([i]) * 100, attributes={"i": i}))
            assert remote.wait_for(5)
            assert [e.attributes["i"] for e in received] == list(range(5))
            assert all(e.channel_id == "feed" for e in received)
        finally:
            remote.close()

    def test_unknown_channel_refused(self, server):
        host, port = server.address
        with pytest.raises(ConnectionError):
            RemoteChannel(host, port, "nope")

    def test_multiple_subscribers(self, server):
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        first = RemoteChannel(host, port, "feed")
        second = RemoteChannel(host, port, "feed")
        try:
            channel.submit(Event(payload=b"broadcast"))
            assert first.wait_for(1)
            assert second.wait_for(1)
            assert server.connections_served == 2
        finally:
            first.close()
            second.close()

    def test_compressed_channel_over_tcp(self, server):
        """The §3 stack end to end over real sockets: producer-side
        compression handler, wire transfer, consumer-side decompression."""
        blocks = list(CommercialDataGenerator(seed=44).stream(16 * 1024, 4))
        source = EventChannel("ois")
        compressed = source.derive(CompressionHandler("lempel-ziv"), "ois/lz")
        server.offer(compressed)
        host, port = server.address
        remote = RemoteChannel(host, port, "ois/lz")
        decompress = DecompressionHandler()
        restored = []
        remote.mirror.subscribe(lambda e: restored.append(decompress(e).payload))
        try:
            for block in blocks:
                source.submit(Event(payload=block))
            assert remote.wait_for(4)
            assert restored == blocks
            # compression really happened on the wire
            assert remote.wire_bytes < sum(len(b) for b in blocks) * 0.7
        finally:
            remote.close()

    def test_transport_attributes_attached(self, server):
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(host, port, "feed")
        received = []
        remote.mirror.subscribe(received.append)
        try:
            channel.submit(Event(payload=b"x" * 1000))
            assert remote.wait_for(1)
            event = received[0]
            assert event.attributes["transport.wire_size"] > 1000
            assert event.attributes["transport.seconds"] > 0
        finally:
            remote.close()

    def test_close_stops_delivery(self, server):
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(host, port, "feed")
        remote.close()
        channel.submit(Event(payload=b"late"))
        assert remote.events_received == 0


class TestReconnect:
    def test_reconnect_and_resubscribe_after_connection_cut(self, server):
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        registry = MetricsRegistry()
        remote = RemoteChannel(
            host,
            port,
            "feed",
            reconnect=True,
            registry=registry,
            retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05),
        )
        received = []
        remote.mirror.subscribe(received.append)
        try:
            channel.submit(Event(payload=b"before"))
            assert remote.wait_for(1)
            # Sever the connection underneath the reader — a network cut,
            # not a close(); the reader must re-dial and resubscribe.
            remote._socket.shutdown(socket.SHUT_RDWR)
            deadline = time.monotonic() + 5.0
            while remote.reconnects == 0 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert remote.reconnects == 1
            channel.submit(Event(payload=b"after"))
            assert remote.wait_for(2)
            assert [e.payload for e in received] == [b"before", b"after"]
            assert (
                registry.counter("repro_tcp_reconnects_total").value(channel="feed")
                == 1
            )
        finally:
            remote.close()

    def test_reconnect_gives_up_when_server_gone(self):
        server = ChannelServer()
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(
            host,
            port,
            "feed",
            reconnect=True,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
        )
        try:
            server.close()
            remote._socket.shutdown(socket.SHUT_RDWR)
            remote._reader.join(timeout=5.0)
            assert not remote._reader.is_alive()
            assert remote.reconnects == 0
        finally:
            remote.close()


class TestBatchedTransport:
    """Server-side jumbo batching is transparent to the client mirror."""

    def test_batched_events_arrive_intact_and_in_order(self):
        from repro.fabric.batching import BatchConfig

        server = ChannelServer(
            batch=BatchConfig(max_frames=4, max_bytes=1 << 20, linger_seconds=0.05)
        )
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(host, port, "feed")
        received = []
        remote.mirror.subscribe(received.append)
        try:
            for i in range(8):
                channel.submit(Event(payload=bytes([i]) * 64, attributes={"i": i}))
            assert remote.wait_for(8)
            assert [e.attributes["i"] for e in received] == list(range(8))
            assert [e.payload for e in received] == [bytes([i]) * 64 for i in range(8)]
            # Coalescing happened: at least one jumbo super-frame crossed
            # the socket (8 rapid events against a 4-frame cap).
            assert remote.batches_received >= 1
            # Transport attributes survive the unpack.
            assert all(e.attributes["transport.wire_size"] > 0 for e in received)
            assert all(e.attributes["transport.seconds"] > 0 for e in received)
        finally:
            remote.close()
            server.close()

    def test_deadline_flush_delivers_a_lone_event(self):
        # One event under a large frame cap: only the linger deadline can
        # emit it, and a batch of one travels as the bare member frame.
        from repro.fabric.batching import BatchConfig

        server = ChannelServer(
            batch=BatchConfig(max_frames=64, max_bytes=1 << 20, linger_seconds=0.01)
        )
        channel = EventChannel("feed")
        server.offer(channel)
        host, port = server.address
        remote = RemoteChannel(host, port, "feed")
        try:
            channel.submit(Event(payload=b"lone"))
            assert remote.wait_for(1)
            assert remote.batches_received == 0  # bare frame, no envelope
        finally:
            remote.close()
            server.close()
