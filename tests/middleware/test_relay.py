"""Unit tests for the consumer-offload compression relay."""

import random
import zlib

import pytest

from repro.compression.registry import get_codec
from repro.core.engine import CodecExecutor
from repro.data.commercial import CommercialDataGenerator
from repro.fabric.cache import BlockCache
from repro.middleware.attributes import ATTR_COMPRESSION_METHOD, ATTR_ORIGINAL_SIZE
from repro.middleware.chaos import ChaosWire, ReliableEventLink
from repro.middleware.events import Event
from repro.middleware.handlers import DecompressionHandler
from repro.middleware.relay import (
    ATTR_PLACEMENT,
    ATTR_RELAY_METHOD,
    CompressionRelay,
    chain_crc,
)
from repro.netsim.clock import VirtualClock
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.faults import FaultPlan, FaultRule, RetryPolicy
from repro.netsim.link import PAPER_LINKS, SimulatedLink
from repro.obs.metrics import MetricsRegistry
from repro.obs.placement import RELAY_BYTES_SAVED_TOTAL, RELAY_EVENTS_TOTAL


def _blocks(count=6, size=4 * 1024, seed=2004):
    return list(CommercialDataGenerator(seed=seed).stream(size, count))


def _events(blocks, method=None):
    attributes = {ATTR_PLACEMENT: "consumer"}
    if method is not None:
        attributes[ATTR_RELAY_METHOD] = method
    return [
        Event(
            payload=block,
            attributes=dict(attributes),
            channel_id="relay-test",
            sequence=i + 1,
            timestamp=float(i),
        )
        for i, block in enumerate(blocks)
    ]


class TestChainCrc:
    def test_matches_iterated_crc32(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        crc = 0
        for payload in payloads:
            crc = zlib.crc32(payload, crc) & 0xFFFFFFFF
        assert chain_crc(payloads) == crc

    def test_order_sensitive(self):
        assert chain_crc([b"a", b"b"]) != chain_crc([b"b", b"a"])

    def test_empty_chain_is_zero(self):
        assert chain_crc([]) == 0


class TestCompressionRelay:
    def test_bytes_identical_to_producer_compression(self):
        blocks = _blocks()
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        forwarded = [relay(event) for event in _events(blocks)]
        executor = CodecExecutor(
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True
        )
        producer = [executor.compress("lempel-ziv", block).payload for block in blocks]
        assert [e.payload for e in forwarded] == producer
        assert relay.crc_chain == chain_crc(producer)
        assert relay.events_compressed == len(blocks)
        assert relay.bytes_out < relay.bytes_in

    def test_forwarded_events_are_decompressor_compatible(self):
        blocks = _blocks()
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        decompress = DecompressionHandler()
        restored = [decompress(relay(event)).payload for event in _events(blocks)]
        assert restored == blocks

    def test_annotations(self):
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        block = _blocks(count=1)[0]
        forwarded = relay(_events([block])[0])
        assert forwarded.attributes[ATTR_COMPRESSION_METHOD] == "lempel-ziv"
        assert forwarded.attributes[ATTR_ORIGINAL_SIZE] == len(block)
        assert forwarded.attributes[ATTR_PLACEMENT] == "consumer"

    def test_per_event_method_overrides_default(self):
        block = _blocks(count=1)[0]
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        forwarded = relay(_events([block], method="huffman")[0])
        assert forwarded.attributes[ATTR_COMPRESSION_METHOD] == "huffman"
        assert forwarded.payload == get_codec("huffman").compress(block)

    def test_already_compressed_passes_through_but_enters_chain(self):
        block = _blocks(count=1)[0]
        payload = get_codec("lempel-ziv").compress(block)
        event = Event(
            payload=payload,
            attributes={ATTR_COMPRESSION_METHOD: "lempel-ziv"},
            sequence=1,
        )
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        forwarded = relay(event)
        assert forwarded.payload == payload
        assert relay.events_compressed == 0
        assert relay.events_forwarded == 1
        assert relay.crc_chain == chain_crc([payload])

    def test_method_none_passes_through(self):
        block = _blocks(count=1)[0]
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        forwarded = relay(_events([block], method="none")[0])
        assert forwarded.payload == block
        assert relay.events_compressed == 0

    def test_expansion_guard_forwards_raw(self):
        rng = random.Random(7)
        noise = bytes(rng.getrandbits(8) for _ in range(4 * 1024))
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        forwarded = relay(_events([noise])[0])
        assert forwarded.payload == noise
        assert forwarded.attributes[ATTR_COMPRESSION_METHOD] == "none"

    def test_fanout_reaches_every_sink(self):
        blocks = _blocks(count=3)
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        first, second = [], []
        relay.subscribe(first.append)
        relay.subscribe(second.append)
        for event in _events(blocks):
            relay(event)
        assert len(first) == len(second) == 3
        assert [e.payload for e in first] == [e.payload for e in second]

    def test_shared_cache_compresses_once(self):
        block = _blocks(count=1)[0]
        cache = BlockCache()
        relay = CompressionRelay(
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, cache=cache
        )
        events = _events([block, block, block])
        payloads = {relay(event).payload for event in events}
        assert len(payloads) == 1
        assert relay.cache_hits == 2

    def test_registry_metrics(self):
        registry = MetricsRegistry()
        relay = CompressionRelay(
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, registry=registry
        )
        blocks = _blocks(count=2)
        for event in _events(blocks):
            relay(event)
        counter = registry.counter(RELAY_EVENTS_TOTAL)
        assert counter.value(method="lempel-ziv", params="-") == 2
        saved = registry.counter(RELAY_BYTES_SAVED_TOTAL)
        assert saved.value(method="lempel-ziv") == relay.bytes_in - relay.bytes_out

    def test_liveness_stamp_advances(self):
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        assert relay.last_forward_monotonic is None
        relay(_events(_blocks(count=1))[0])
        assert relay.last_forward_monotonic is not None


class TestRelayUnderFaults:
    """The CI placement gate's relay leg, at unit-test scale."""

    def _run(self, blocks, seed):
        plan = FaultPlan(
            [
                FaultRule(kind="drop", probability=0.2),
                FaultRule(kind="corrupt", probability=0.2),
                FaultRule(kind="duplicate", probability=0.1),
            ],
            seed=seed,
            name="relay-faults",
        )
        wire = ChaosWire(
            plan, link=SimulatedLink(PAPER_LINKS["100mbit"], seed=2),
            clock=VirtualClock(),
        )
        relay = CompressionRelay(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        reliable = ReliableEventLink(
            wire, relay, retry=RetryPolicy(seed=seed, max_attempts=8, base_delay=0.01)
        )
        for event in _events(blocks):
            reliable.send(event)
        missing = reliable.close()
        return relay, missing

    def test_byte_exact_through_seeded_faults(self):
        blocks = _blocks(count=8)
        relay, missing = self._run(blocks, seed=13)
        assert not missing
        executor = CodecExecutor(
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, expansion_fallback=True
        )
        expected = chain_crc(
            executor.compress("lempel-ziv", block).payload for block in blocks
        )
        assert relay.crc_chain == expected
        assert relay.events_forwarded == len(blocks)

    def test_deterministic_per_seed(self):
        blocks = _blocks(count=8)
        first, _ = self._run(blocks, seed=13)
        second, _ = self._run(blocks, seed=13)
        assert first.crc_chain == second.crc_chain
        assert first.bytes_out == second.bytes_out
        assert first.relay_seconds == pytest.approx(second.relay_seconds)
