"""Unit tests for compression/decompression handlers."""

import pytest

from repro.middleware.attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_COMPRESSION_SECONDS,
    ATTR_ORIGINAL_SIZE,
)
from repro.middleware.events import Event
from repro.middleware.handlers import CompressionHandler, DecompressionHandler
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE, ULTRA_SPARC


class TestCompressionHandler:
    def test_compresses_and_annotates(self, commercial_block):
        handler = CompressionHandler("lempel-ziv")
        event = Event(payload=commercial_block)
        compressed = handler(event)
        assert compressed.size < event.size
        assert compressed.attributes[ATTR_COMPRESSION_METHOD] == "lempel-ziv"
        assert compressed.attributes[ATTR_ORIGINAL_SIZE] == event.size
        assert compressed.attributes[ATTR_COMPRESSION_SECONDS] > 0

    def test_none_method_passthrough(self):
        handler = CompressionHandler("none")
        event = Event(payload=b"data")
        result = handler(event)
        assert result.payload == b"data"
        assert result.attributes[ATTR_COMPRESSION_METHOD] == "none"
        assert result.attributes[ATTR_COMPRESSION_SECONDS] == 0.0

    def test_unknown_method_rejected(self):
        from repro.compression.base import CodecError

        with pytest.raises(CodecError):
            CompressionHandler("lzma")

    def test_modeled_time_deterministic(self, commercial_block):
        handler = CompressionHandler("huffman", cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        a = handler(Event(payload=commercial_block))
        b = handler(Event(payload=commercial_block))
        assert (
            a.attributes[ATTR_COMPRESSION_SECONDS]
            == b.attributes[ATTR_COMPRESSION_SECONDS]
        )

    def test_modeled_time_scales_with_cpu(self, commercial_block):
        fast = CompressionHandler("huffman", cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        slow = CompressionHandler("huffman", cost_model=DEFAULT_COSTS, cpu=ULTRA_SPARC)
        event = Event(payload=commercial_block)
        assert (
            slow(event).attributes[ATTR_COMPRESSION_SECONDS]
            > fast(event).attributes[ATTR_COMPRESSION_SECONDS]
        )

    def test_expansion_guard_ships_raw_with_truthful_method(self, random_block):
        """An expanding codec must not inflate the event; the receiver sees
        method "none" so the wire attribute stays truthful."""
        handler = CompressionHandler("huffman")
        result = handler(Event(payload=random_block))
        assert result.payload == random_block
        assert result.attributes[ATTR_COMPRESSION_METHOD] == "none"
        restored = DecompressionHandler()(result)
        assert restored.payload == random_block


class TestDecompressionHandler:
    @pytest.mark.parametrize("method", ["none", "huffman", "lempel-ziv", "burrows-wheeler"])
    def test_roundtrip_through_handlers(self, method, commercial_block):
        data = commercial_block[:16384]
        compress = CompressionHandler(method)
        decompress = DecompressionHandler()
        restored = decompress(compress(Event(payload=data)))
        assert restored.payload == data

    def test_missing_method_attribute_means_raw(self):
        handler = DecompressionHandler()
        event = Event(payload=b"raw bytes")
        assert handler(event).payload == b"raw bytes"
