"""Unit tests for the IQ-ECho facade: sampling publisher + adaptive subscriber."""

import pytest

from repro.data.commercial import CommercialDataGenerator
from repro.middleware.attributes import (
    ATTR_COMPRESSION_METHOD,
    ATTR_LZ_REDUCING_SPEED,
    ATTR_SAMPLED_RATIO,
)
from repro.middleware.channels import ChannelError
from repro.middleware.echo import AdaptiveSubscriber, EchoSystem, SamplingPublisher
from repro.middleware.transport import TransportBridge
from repro.netsim.clock import VirtualClock
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS, SimulatedLink, make_link
from repro.netsim.loadtrace import LoadTrace
from repro.core.sampler import LzSampler


class TestEchoSystem:
    def test_create_and_get(self):
        system = EchoSystem()
        channel = system.create_channel("c")
        assert system.get_channel("c") is channel
        assert system.channel_ids() == ["c"]

    def test_duplicate_rejected(self):
        system = EchoSystem()
        system.create_channel("c")
        with pytest.raises(ChannelError):
            system.create_channel("c")

    def test_unknown_rejected(self):
        with pytest.raises(ChannelError):
            EchoSystem().get_channel("nope")


class TestSamplingPublisher:
    def test_attaches_probe_attributes(self, commercial_block):
        system = EchoSystem()
        channel = system.create_channel("c")
        received = []
        channel.subscribe(received.append)
        publisher = SamplingPublisher(channel, sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE))
        publisher.publish(commercial_block)
        event = received[0]
        assert 0 < event.attributes[ATTR_SAMPLED_RATIO] < 1
        assert event.attributes[ATTR_LZ_REDUCING_SPEED] > 0
        assert publisher.published == 1

    def test_timestamps_use_clock(self, commercial_block):
        clock = VirtualClock(start=5.0)
        system = EchoSystem()
        channel = system.create_channel("c")
        received = []
        channel.subscribe(received.append)
        SamplingPublisher(channel, clock=clock).publish(commercial_block)
        assert received[0].timestamp == 5.0


def build_world(link_name="100mbit", load=None, seed=1, congestion=0.5):
    clock = VirtualClock()
    link = SimulatedLink(PAPER_LINKS[link_name], seed=seed, congestion_per_connection=congestion)
    system = EchoSystem()
    source = system.create_channel("source")
    bridge = TransportBridge(link, clock, load=load)
    publisher = SamplingPublisher(
        source, sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), clock=clock
    )
    subscriber = AdaptiveSubscriber(system, source, bridge, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
    return clock, system, source, publisher, subscriber


class TestAdaptiveSubscriber:
    def test_starts_uncompressed(self):
        _, system, _, _, subscriber = build_world()
        assert subscriber.current_method == "none"
        assert system.attributes.get(ATTR_COMPRESSION_METHOD) == "none"

    def test_fast_link_stays_uncompressed(self, commercial_block):
        _, _, _, publisher, subscriber = build_world("1gbit")
        for _ in range(10):
            publisher.publish(commercial_block)
        methods = {r.method for r in subscriber.records}
        assert methods == {"none"}

    def test_loaded_link_switches_to_compression(self, commercial_block):
        heavy = LoadTrace.from_pairs([(0, 60)])
        _, _, _, publisher, subscriber = build_world("100mbit", load=heavy)
        for _ in range(12):
            publisher.publish(commercial_block)
        assert subscriber.switches >= 1
        assert subscriber.current_method in {"lempel-ziv", "burrows-wheeler"}
        late = [r.method for r in subscriber.records[-4:]]
        assert all(m != "none" for m in late)

    def test_payloads_reconstructed(self, commercial_block):
        heavy = LoadTrace.from_pairs([(0, 60)])
        _, _, _, publisher, subscriber = build_world("100mbit", load=heavy)
        seen_sizes = []
        subscriber.on_delivery = lambda r: seen_sizes.append(r.original_size)
        for _ in range(6):
            publisher.publish(commercial_block)
        assert all(s == len(commercial_block) for s in seen_sizes)

    def test_attribute_announces_switch(self, commercial_block):
        heavy = LoadTrace.from_pairs([(0, 60)])
        _, system, _, publisher, subscriber = build_world("100mbit", load=heavy)
        for _ in range(12):
            publisher.publish(commercial_block)
        assert (
            system.attributes.get(ATTR_COMPRESSION_METHOD) == subscriber.current_method
        )

    def test_derived_channels_created_lazily(self, commercial_block):
        _, _, source, publisher, subscriber = build_world("1gbit")
        for _ in range(3):
            publisher.publish(commercial_block)
        # only the "none" derivation should exist on a fast link
        assert len(source.derived_channels) == 1

    def test_switch_to_unoffered_method_raises(self):
        _, _, _, _, subscriber = build_world()
        with pytest.raises(ChannelError):
            subscriber._switch_to("arithmetic-deluxe")

    def test_records_carry_wire_measurements(self, commercial_block):
        _, _, _, publisher, subscriber = build_world()
        publisher.publish(commercial_block)
        record = subscriber.records[0]
        assert record.wire_size > 0
        assert record.transport_seconds > 0
        assert record.sampled_ratio is not None

    def test_two_heterogeneous_consumers_choose_independently(self, commercial_block):
        """§3.2: consumers customize delivery for themselves; a LAN consumer
        and a loaded-link consumer settle on different methods for the same
        producer."""
        clock = VirtualClock()
        system = EchoSystem()
        source = system.create_channel("source")
        publisher = SamplingPublisher(
            source, sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), clock=clock
        )
        fast_bridge = TransportBridge(
            SimulatedLink(PAPER_LINKS["1gbit"], seed=1), clock, advance_clock=False
        )
        slow_bridge = TransportBridge(
            SimulatedLink(PAPER_LINKS["100mbit"], seed=1, congestion_per_connection=0.5),
            clock,
            load=LoadTrace.from_pairs([(0, 60)]),
            advance_clock=False,
        )
        lan_consumer = AdaptiveSubscriber(
            system, source, fast_bridge,
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, consumer_id="lan",
        )
        wan_consumer = AdaptiveSubscriber(
            system, source, slow_bridge,
            cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, consumer_id="wan",
        )
        for _ in range(12):
            publisher.publish(commercial_block)
        assert len(lan_consumer.records) == len(wan_consumer.records) == 12
        assert lan_consumer.current_method == "none"
        assert wan_consumer.current_method in {"lempel-ziv", "burrows-wheeler"}
        # each consumer announces under its own namespaced attribute
        assert system.attributes.get("compression.method.lan") == "none"
        assert system.attributes.get("compression.method.wan") == wan_consumer.current_method
        # derived channels are per-consumer, so ids never collide
        ids = [c.channel_id for c in source.derived_channels]
        assert len(ids) == len(set(ids))

    def test_load_release_returns_to_none(self, commercial_block):
        trace = LoadTrace.from_pairs([(0, 60), (40, 0)])
        clock, _, _, publisher, subscriber = build_world("100mbit", load=trace)
        for i in range(40):
            target = i * 2.0
            if clock.now() < target:
                clock.advance(target - clock.now())
            publisher.publish(commercial_block)
        assert subscriber.records[-1].method == "none"
