"""Unit tests for runtime-tunable compression parameters (paper §5 cap. 3)."""

import pytest

from repro.compression.bwhuff import BurrowsWheelerCodec
from repro.compression.lossy import QuantizedFloatCodec
from repro.middleware.attributes import ATTR_COMPRESSION_PARAMETERS, QualityAttributes
from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.handlers import DecompressionHandler, TunableCompressionHandler


class TestTunableCompressionHandler:
    def test_initial_parameters_applied(self):
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=8192
        )
        assert handler.codec.chunk_size == 8192

    def test_reconfigure_rebuilds_codec(self):
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=8192
        )
        handler.reconfigure(chunk_size=2048)
        assert handler.codec.chunk_size == 2048
        assert handler.reconfigurations == 1

    def test_events_flow_across_reconfiguration(self, commercial_block):
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=16384
        )
        decompress = DecompressionHandler()
        before = handler(Event(payload=commercial_block))
        handler.reconfigure(chunk_size=2048)
        after = handler(Event(payload=commercial_block))
        # both generations decode with the self-describing stream format
        assert decompress(before).payload == commercial_block
        assert decompress(after).payload == commercial_block

    def test_bound_to_quality_attributes(self, commercial_block):
        attributes = QualityAttributes()
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=16384
        )
        unsubscribe = handler.bind(attributes, ATTR_COMPRESSION_PARAMETERS)
        attributes.set(ATTR_COMPRESSION_PARAMETERS, {"chunk_size": 4096})
        assert handler.codec.chunk_size == 4096
        unsubscribe()
        attributes.set(ATTR_COMPRESSION_PARAMETERS, {"chunk_size": 1024})
        assert handler.codec.chunk_size == 4096  # detached

    def test_non_dict_attribute_ignored(self):
        attributes = QualityAttributes()
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=8192
        )
        handler.bind(attributes, ATTR_COMPRESSION_PARAMETERS)
        attributes.set(ATTR_COMPRESSION_PARAMETERS, "not-a-dict")
        assert handler.codec.chunk_size == 8192

    def test_lossy_tolerance_tuning(self):
        """The §5 use case: loosen a lossy tolerance under pressure."""
        import numpy as np

        values = np.random.default_rng(0).uniform(-10, 10, 2000)
        data = values.astype("<f8").tobytes()
        handler = TunableCompressionHandler(
            "quantized-float", QuantizedFloatCodec, tolerance=1e-6
        )
        tight = handler(Event(payload=data)).size
        handler.reconfigure(tolerance=1e-2)
        loose = handler(Event(payload=data)).size
        assert loose < tight

    def test_in_channel_path(self, commercial_block):
        channel = EventChannel("src")
        handler = TunableCompressionHandler(
            "burrows-wheeler", BurrowsWheelerCodec, chunk_size=8192
        )
        derived = channel.derive(handler)
        received = []
        derived.subscribe(received.append)
        channel.submit(Event(payload=commercial_block))
        handler.reconfigure(chunk_size=2048)
        channel.submit(Event(payload=commercial_block))
        assert len(received) == 2
        decompress = DecompressionHandler()
        assert all(decompress(e).payload == commercial_block for e in received)
