"""Unit tests for the wire format and the multiplexing transport bridge."""

import pytest

from repro.middleware.channels import EventChannel
from repro.middleware.events import Event
from repro.middleware.transport import (
    ATTR_TRANSPORT_SECONDS,
    ATTR_WIRE_SIZE,
    TransportBridge,
    WireFormat,
)
from repro.netsim.clock import VirtualClock
from repro.netsim.link import make_link
from repro.netsim.loadtrace import LoadTrace


class TestWireFormat:
    def test_roundtrip(self):
        event = Event(
            payload=b"\x00\x01binary\xff",
            attributes={"method": "huffman", "ratio": 0.5, "flag": True},
            channel_id="c1",
            sequence=42,
            timestamp=1.25,
        )
        decoded = WireFormat.decode(WireFormat.encode(event))
        assert decoded.payload == event.payload
        assert decoded.attributes == event.attributes
        assert decoded.channel_id == "c1"
        assert decoded.sequence == 42
        assert decoded.timestamp == 1.25

    def test_empty_payload(self):
        event = Event(payload=b"", channel_id="c", sequence=1)
        assert WireFormat.decode(WireFormat.encode(event)).payload == b""

    def test_truncated_raises(self):
        wire = WireFormat.encode(Event(payload=b"hello", channel_id="c"))
        with pytest.raises(ValueError):
            WireFormat.decode(wire[:-2])

    def test_wire_overhead_is_modest(self):
        event = Event(payload=b"x" * 10000, channel_id="c", sequence=1)
        assert len(WireFormat.encode(event)) < 10200


class TestTransportBridge:
    def _setup(self, link_name="100mbit", load=None):
        clock = VirtualClock()
        link = make_link(link_name, seed=1)
        bridge = TransportBridge(link, clock, load=load)
        local = EventChannel("local")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        return clock, bridge, local, received

    def test_events_cross_the_bridge(self):
        _, _, local, received = self._setup()
        local.submit(Event(payload=b"payload"))
        assert len(received) == 1
        assert received[0].payload == b"payload"

    def test_clock_advances_by_transfer_time(self):
        clock, _, local, _ = self._setup(link_name="1mbit")
        local.submit(Event(payload=b"x" * 100_000))
        assert clock.now() > 0.5  # ~0.65s at 0.147 MB/s

    def test_transport_attributes_attached(self):
        _, _, local, received = self._setup()
        local.submit(Event(payload=b"abc"))
        event = received[0]
        assert event.attributes[ATTR_TRANSPORT_SECONDS] > 0
        assert event.attributes[ATTR_WIRE_SIZE] > 3

    def test_load_slows_transfers(self):
        heavy = LoadTrace.from_pairs([(0, 80)])
        clock_loaded, _, local_loaded, _ = self._setup("1mbit", load=heavy)
        clock_idle, _, local_idle, _ = self._setup("1mbit")
        local_loaded.submit(Event(payload=b"x" * 50_000))
        local_idle.submit(Event(payload=b"x" * 50_000))
        assert clock_loaded.now() > clock_idle.now() * 2

    def test_multiplexes_multiple_channels(self):
        clock = VirtualClock()
        bridge = TransportBridge(make_link("100mbit"), clock)
        a, b = EventChannel("a"), EventChannel("b")
        got_a, got_b = [], []
        bridge.export(a).subscribe(got_a.append)
        bridge.export(b).subscribe(got_b.append)
        a.submit(Event(payload=b"1"))
        b.submit(Event(payload=b"2"))
        assert len(got_a) == len(got_b) == 1
        assert bridge.stats.events == 2
        assert set(bridge.exported_channels()) == {"a", "b"}

    def test_unexport_stops_traffic(self):
        _, bridge, local, received = self._setup()
        bridge.unexport(local)
        local.submit(Event(payload=b"x"))
        assert received == []
        assert bridge.exported_channels() == []

    def test_stats_accumulate(self):
        _, bridge, local, _ = self._setup()
        local.submit(Event(payload=b"12345"))
        local.submit(Event(payload=b"67890"))
        assert bridge.stats.events == 2
        assert bridge.stats.wire_bytes > 10
        assert bridge.stats.transfer_seconds > 0
        assert bridge.stats.per_channel_events["local"] == 2

    def test_advance_clock_disabled(self):
        clock = VirtualClock()
        bridge = TransportBridge(make_link("1mbit"), clock, advance_clock=False)
        local = EventChannel("l")
        bridge.export(local).subscribe(lambda e: None)
        local.submit(Event(payload=b"x" * 100_000))
        assert clock.now() == 0.0


class TestRudpBridge:
    def _world(self, loss_rate=0.1, seed=3):
        from repro.middleware.transport import (
            ATTR_TRANSPORT_RETRANSMISSIONS,
            RudpBridge,
        )
        from repro.netsim.rudp import PacketLink, RateControlledTransport

        clock = VirtualClock()
        transport = RateControlledTransport(
            PacketLink(make_link("1mbit", seed=seed), loss_rate=loss_rate, seed=seed)
        )
        bridge = RudpBridge(transport, clock)
        local = EventChannel("rudp-src")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        return clock, bridge, local, received

    def test_events_delivered_reliably_despite_loss(self):
        clock, bridge, local, received = self._world(loss_rate=0.2)
        for i in range(10):
            local.submit(Event(payload=bytes([i]) * 5000))
        assert len(received) == 10
        assert [e.payload[0] for e in received] == list(range(10))

    def test_retransmissions_reported(self):
        _, _, local, received = self._world(loss_rate=0.3)
        from repro.middleware.transport import ATTR_TRANSPORT_RETRANSMISSIONS

        for _ in range(6):
            local.submit(Event(payload=b"z" * 20_000))
        total_retx = sum(
            e.attributes[ATTR_TRANSPORT_RETRANSMISSIONS] for e in received
        )
        assert total_retx > 0

    def test_loss_costs_clock_time(self):
        clock_clean, _, local_clean, _ = self._world(loss_rate=0.0, seed=4)
        clock_lossy, _, local_lossy, _ = self._world(loss_rate=0.3, seed=4)
        payload = b"q" * 50_000
        local_clean.submit(Event(payload=payload))
        local_lossy.submit(Event(payload=payload))
        assert clock_lossy.now() > clock_clean.now()

    def test_rate_warms_across_events(self):
        _, bridge, local, _ = self._world(loss_rate=0.0)
        initial = bridge.transport.rate
        for _ in range(5):
            local.submit(Event(payload=b"a" * 10_000))
        assert bridge.transport.rate > initial
