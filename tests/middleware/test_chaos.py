"""The hostile wire and the recovery protocol on top of it."""

import io

import pytest

from repro.middleware.channels import EventChannel
from repro.middleware.chaos import ChaosWire, DeliveryError, ReliableEventLink
from repro.middleware.events import Event
from repro.middleware.reassembly import OrderedReassembly
from repro.middleware.transport import TransportBridge, WireFormat
from repro.netsim.clock import VirtualClock
from repro.netsim.faults import FaultExhaustedError, FaultPlan, FaultRule, RetryPolicy
from repro.netsim.link import PAPER_LINKS, SimulatedLink
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceWriter, read_trace


def make_events(count, channel="chan"):
    return [
        Event(
            payload=bytes([i]) * (32 + i),
            attributes={},
            channel_id=channel,
            sequence=i + 1,
            timestamp=float(i),
        )
        for i in range(count)
    ]


def fast_retry(max_attempts=6, seed=0):
    return RetryPolicy(
        max_attempts=max_attempts, base_delay=0.01, max_delay=0.1, seed=seed
    )


class TestChaosWire:
    def test_clean_wire_passes_bytes_through(self):
        wire = ChaosWire(FaultPlan([]))
        assert wire.send(b"hello") == [b"hello"]
        assert wire.sends == 1
        assert wire.bytes_sent == 5

    def test_drop_and_duplicate(self):
        plan = FaultPlan(
            [FaultRule(kind="drop", index=0), FaultRule(kind="duplicate", index=1)]
        )
        wire = ChaosWire(plan)
        assert wire.send(b"a") == []
        assert wire.send(b"b") == [b"b", b"b"]

    def test_corrupt_damages_exactly_one_byte(self):
        plan = FaultPlan([FaultRule(kind="corrupt", index=0)], seed=3)
        wire = ChaosWire(plan)
        (arrived,) = wire.send(b"x" * 40)
        assert arrived != b"x" * 40
        assert len(arrived) == 40

    def test_reorder_holds_then_swaps(self):
        plan = FaultPlan([FaultRule(kind="reorder", index=0)])
        wire = ChaosWire(plan)
        assert wire.send(b"first") == []
        assert wire.send(b"second") == [b"second", b"first"]
        assert wire.flush() == []

    def test_flush_releases_tail_hold(self):
        plan = FaultPlan([FaultRule(kind="reorder", index=0)])
        wire = ChaosWire(plan)
        wire.send(b"only")
        assert wire.flush() == [b"only"]

    def test_timing_charged_to_clock(self):
        clock = VirtualClock()
        link = SimulatedLink(PAPER_LINKS["1mbit"], seed=0)
        plan = FaultPlan([FaultRule(kind="delay", index=0, delay=2.0)])
        wire = ChaosWire(plan, link=link, clock=clock)
        wire.send(b"z" * 1024)
        assert clock.now() > 2.0
        assert wire.seconds_charged == pytest.approx(clock.now())


class TestReliableEventLink:
    def test_clean_delivery_in_order(self):
        received = []
        link = ReliableEventLink(ChaosWire(FaultPlan([])), received.append)
        events = make_events(5)
        attempts = [link.send(e) for e in events]
        assert attempts == [1] * 5
        assert [e.sequence for e in received] == [1, 2, 3, 4, 5]
        assert [e.payload for e in received] == [e.payload for e in events]
        assert link.close() == []

    def test_corrupt_frame_rejected_then_recovered_byte_exact(self):
        received = []
        plan = FaultPlan([FaultRule(kind="corrupt", index=0)], seed=7)
        link = ReliableEventLink(
            ChaosWire(plan), received.append, retry=fast_retry()
        )
        (event,) = make_events(1)
        assert link.send(event) == 2
        assert link.frames_rejected == 1
        assert link.retries == 1
        assert received[0].payload == event.payload

    def test_drop_recovered_with_backoff_on_clock(self):
        clock = VirtualClock()
        plan = FaultPlan([FaultRule(kind="drop", index=0)])
        link = ReliableEventLink(
            ChaosWire(plan, clock=clock),
            lambda e: None,
            retry=fast_retry(),
            clock=clock,
        )
        link.send(make_events(1)[0])
        assert clock.now() == pytest.approx(link.recovery_seconds)
        assert link.recovery_seconds > 0

    def test_duplicate_delivered_once(self):
        received = []
        plan = FaultPlan([FaultRule(kind="duplicate")])  # duplicate everything
        link = ReliableEventLink(ChaosWire(plan), received.append)
        for event in make_events(4):
            link.send(event)
        assert link.duplicates_dropped == 4
        assert [e.sequence for e in received] == [1, 2, 3, 4]

    def test_reorder_released_in_sequence_order(self):
        received = []
        plan = FaultPlan([FaultRule(kind="reorder", index=0)])
        link = ReliableEventLink(
            ChaosWire(plan), received.append, retry=fast_retry()
        )
        first, second = make_events(2)
        # First send is held; the retry transmission releases it (and the
        # held copy becomes the duplicate the dedupe layer absorbs).
        link.send(first)
        link.send(second)
        assert [e.sequence for e in received] == [1, 2]

    def test_exhaustion_raises_delivery_error(self):
        plan = FaultPlan([FaultRule(kind="drop")])  # every transmission
        link = ReliableEventLink(
            ChaosWire(plan), lambda e: None, retry=fast_retry(max_attempts=3)
        )
        with pytest.raises(DeliveryError):
            link.send(make_events(1)[0])
        assert link.retries == 2

    def test_observability_counters_and_trace(self):
        registry = MetricsRegistry()
        sink = io.StringIO()
        tracer = TraceWriter(sink)
        plan = FaultPlan(
            [FaultRule(kind="corrupt", index=0), FaultRule(kind="drop", index=2)],
            seed=1,
        )
        link = ReliableEventLink(
            ChaosWire(plan),
            lambda e: None,
            retry=fast_retry(),
            registry=registry,
            tracer=tracer,
        )
        for event in make_events(3):
            link.send(event)
        assert registry.counter("repro_frames_rejected_total").value() == 1
        assert registry.counter("repro_event_retries_total").value() == 2
        records = list(read_trace(io.StringIO(sink.getvalue())))
        names = [r["name"] for r in records]
        assert "chaos.frame_rejected" in names
        assert "chaos.retry" in names
        assert names.count("chaos.deliver") == 3

    def test_deterministic_across_runs(self):
        def run():
            received = []
            plan = FaultPlan(
                [
                    FaultRule(kind="drop", probability=0.2),
                    FaultRule(kind="corrupt", probability=0.1),
                    FaultRule(kind="duplicate", probability=0.1),
                ],
                seed=99,
            )
            link = ReliableEventLink(
                ChaosWire(plan), received.append, retry=fast_retry(seed=99)
            )
            for event in make_events(30):
                link.send(event)
            link.close()
            return (
                [e.payload for e in received],
                link.retries,
                link.frames_rejected,
                link.duplicates_dropped,
            )

        assert run() == run()


class TestReassemblyRerequest:
    def test_damaged_fragment_discarded_and_rerequested(self):
        asked = []
        out = []
        reassembly = OrderedReassembly(out.append, request=asked.append)
        events = {e.sequence: e for e in make_events(4)}
        reassembly.push(events[2])
        reassembly.push(events[3])
        assert reassembly.missing() == [1]
        reassembly.damaged(2)
        assert asked == [2]
        assert reassembly.rerequested == 1
        assert reassembly.missing() == [1, 2]
        # The re-sent copy plus the head fill the gap; order is preserved.
        reassembly.push(events[1])
        reassembly.push(events[2])
        assert [e.sequence for e in out] == [1, 2, 3]

    def test_damaged_after_release_is_noop(self):
        asked = []
        reassembly = OrderedReassembly(lambda e: None, request=asked.append)
        reassembly.push(make_events(1)[0])
        reassembly.damaged(1)
        assert asked == []
        assert reassembly.rerequested == 0


class TestFaultyTransportBridge:
    def test_bridge_recovers_from_scheduled_faults(self):
        clock = VirtualClock()
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=0)
        plan = FaultPlan(
            [FaultRule(kind="drop", index=0), FaultRule(kind="corrupt", index=2)],
            seed=5,
        )
        bridge = TransportBridge(
            link, clock, fault_plan=plan, retry=fast_retry()
        )
        local = EventChannel("chan")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        for event in make_events(3):
            local.submit(Event(payload=event.payload))
        assert len(received) == 3
        assert bridge.stats.retries == 2
        assert bridge.stats.frames_rejected == 1
        assert [e.payload for e in received] == [e.payload for e in make_events(3)]

    def test_bridge_exhaustion_is_loud(self):
        clock = VirtualClock()
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=0)
        plan = FaultPlan([FaultRule(kind="drop")])
        bridge = TransportBridge(
            link, clock, fault_plan=plan, retry=fast_retry(max_attempts=2)
        )
        local = EventChannel("chan")
        bridge.export(local)
        with pytest.raises(FaultExhaustedError):
            local.submit(Event(payload=b"payload"))

    def test_bridge_without_plan_unchanged(self):
        clock = VirtualClock()
        link = SimulatedLink(PAPER_LINKS["1gbit"], seed=0)
        bridge = TransportBridge(link, clock)
        local = EventChannel("chan")
        mirror = bridge.export(local)
        received = []
        mirror.subscribe(received.append)
        local.submit(Event(payload=b"data"))
        assert len(received) == 1
        assert bridge.stats.retries == 0


class TestWireFormatIntegrity:
    def test_wireformat_frames_carry_crc(self):
        (event,) = make_events(1)
        wire = WireFormat.encode(event)
        # v2 magic: the over-long-varint version marker.
        assert wire[:2] == b"\x80\x00"
        decoded = WireFormat.decode(wire)
        assert decoded.payload == event.payload
