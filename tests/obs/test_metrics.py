"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("c")
        assert counter.value() == 0.0

    def test_inc_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labels_separate_series(self):
        counter = Counter("c")
        counter.inc(1, channel="a")
        counter.inc(2, channel="b")
        assert counter.value(channel="a") == 1
        assert counter.value(channel="b") == 2
        assert counter.total() == 3

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(1, a="1", b="2")
        counter.inc(1, b="2", a="1")
        assert counter.value(a="1", b="2") == 2
        assert counter.series_count == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_cardinality_cap(self):
        counter = Counter("c", max_series=3)
        for i in range(3):
            counter.inc(key=str(i))
        with pytest.raises(ValueError, match="max_series"):
            counter.inc(key="overflow")
        # existing series still writable after the cap is hit
        counter.inc(key="0")
        assert counter.value(key="0") == 2


class TestGauge:
    def test_unset_returns_default(self):
        gauge = Gauge("g")
        assert gauge.value() is None
        assert gauge.value(default=1.5) == 1.5

    def test_set_and_overwrite(self):
        gauge = Gauge("g")
        gauge.set(2.0, codec="lz")
        gauge.set(3.0, codec="lz")
        assert gauge.value(codec="lz") == 3.0

    def test_has_and_remove(self):
        gauge = Gauge("g")
        gauge.set(1.0, codec="lz")
        assert gauge.has(codec="lz")
        gauge.remove(codec="lz")
        assert not gauge.has(codec="lz")
        gauge.remove(codec="lz")  # idempotent


class TestHistogram:
    def test_requires_boundaries(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[])

    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[1.0, 0.5])
        with pytest.raises(ValueError):
            Histogram("h", boundaries=[1.0, 1.0])

    def test_bucket_edges_are_upper_inclusive(self):
        hist = Histogram("h", boundaries=[1.0, 10.0])
        hist.observe(0.5)   # bucket 0 (<= 1.0)
        hist.observe(1.0)   # bucket 0 (edge is inclusive)
        hist.observe(5.0)   # bucket 1 (<= 10.0)
        hist.observe(50.0)  # overflow bucket
        snap = hist.snapshot()
        assert snap["counts"] == [2, 1, 1]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(56.5)
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(56.5 / 4)

    def test_snapshot_none_for_unseen_labels(self):
        hist = Histogram("h", boundaries=[1.0])
        assert hist.snapshot(channel="x") is None

    def test_labelled_series_independent(self):
        hist = Histogram("h", boundaries=[1.0])
        hist.observe(0.5, method="lz")
        hist.observe(2.0, method="bw")
        assert hist.snapshot(method="lz")["counts"] == [1, 0]
        assert hist.snapshot(method="bw")["counts"] == [0, 1]

    def test_default_seconds_buckets_are_sorted(self):
        assert list(DEFAULT_SECONDS_BUCKETS) == sorted(DEFAULT_SECONDS_BUCKETS)


class TestMetricsRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("c")
        second = registry.counter("c")
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_histogram_boundary_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", boundaries=[1.0, 2.0])
        with pytest.raises(ValueError, match="different boundaries"):
            registry.histogram("h", boundaries=[1.0, 3.0])
        # identical boundaries are fine
        registry.histogram("h", boundaries=[1.0, 2.0])

    def test_as_dict_and_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter").inc(2, channel="a")
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=[1.0]).observe(0.5)
        parsed = json.loads(registry.to_json())
        assert parsed["c"]["kind"] == "counter"
        assert parsed["c"]["series"][0]["labels"] == {"channel": "a"}
        assert parsed["c"]["series"][0]["value"] == 2
        assert parsed["g"]["series"][0]["value"] == 1.5
        assert parsed["h"]["series"][0]["counts"] == [1, 0]

    def test_names_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert registry.names() == ["a", "b"]
        assert "a" in registry
        assert "z" not in registry

    def test_default_registry_swap(self):
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
        assert get_registry() is previous
