"""Unit tests for the JSON-lines trace writer and reader."""

import io
import json

import pytest

from repro.obs.trace import TraceWriter, read_trace


def test_event_roundtrip_via_owned_sink():
    writer = TraceWriter()
    writer.event("block", method="lempel-ziv", index=3)
    records = list(read_trace(io.StringIO(writer.getvalue())))
    assert records == [
        {"seq": 0, "type": "event", "name": "block", "method": "lempel-ziv", "index": 3}
    ]


def test_seq_increments_monotonically():
    writer = TraceWriter()
    for i in range(5):
        writer.event("tick", index=i)
    records = list(read_trace(io.StringIO(writer.getvalue())))
    assert [r["seq"] for r in records] == [0, 1, 2, 3, 4]
    assert [r["index"] for r in records] == [0, 1, 2, 3, 4]


def test_no_clock_means_no_ts():
    writer = TraceWriter()
    writer.event("quiet")
    (record,) = read_trace(io.StringIO(writer.getvalue()))
    assert "ts" not in record


def test_explicit_ts_wins_over_injected_clock():
    ticks = iter([10.0, 20.0])
    writer = TraceWriter(clock=lambda: next(ticks))
    writer.event("clocked")
    writer.event("stamped", ts=99.5)
    first, second = read_trace(io.StringIO(writer.getvalue()))
    assert first["ts"] == 10.0
    assert second["ts"] == 99.5


def test_span_carries_caller_supplied_duration():
    writer = TraceWriter()
    writer.span("replay", duration=1.25, ts=160.0, blocks=64)
    (record,) = read_trace(io.StringIO(writer.getvalue()))
    assert record["type"] == "span"
    assert record["duration"] == 1.25
    assert record["ts"] == 160.0
    assert record["blocks"] == 64


def test_external_sink_and_file_roundtrip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with open(path, "w", encoding="utf-8") as handle:
        with TraceWriter(sink=handle) as writer:
            writer.event("a", x=1)
            writer.span("b", duration=0.5)
            assert writer.records_written == 2
    records = list(read_trace(path))
    assert [r["name"] for r in records] == ["a", "b"]
    # every line is standalone JSON
    lines = path.read_text().splitlines()
    assert all(json.loads(line) for line in lines)


def test_getvalue_rejected_on_external_sink(tmp_path):
    with open(tmp_path / "t.jsonl", "w", encoding="utf-8") as handle:
        writer = TraceWriter(sink=handle)
        with pytest.raises(TypeError):
            writer.getvalue()


def test_read_trace_skips_blank_lines():
    source = io.StringIO('{"seq": 0, "type": "event", "name": "x"}\n\n  \n')
    records = list(read_trace(source))
    assert len(records) == 1
