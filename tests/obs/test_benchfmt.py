"""Unit tests for the bench result schema and the regression comparator."""

import pytest

from repro.obs.benchfmt import (
    SCHEMA,
    BenchMetric,
    BenchReport,
    compare_reports,
    load_report,
)


def make_report(**values):
    """Build a report of better='lower', 10%-tolerance metrics."""
    report = BenchReport(metadata={"suite": "test"})
    for name, value in values.items():
        report.record(name, value, better="lower", tolerance=0.10)
    return report


class TestSchema:
    def test_metric_contract_validation(self):
        with pytest.raises(ValueError):
            BenchMetric("m", 1.0, kind="wallclock")
        with pytest.raises(ValueError):
            BenchMetric("m", 1.0, better="sideways")
        with pytest.raises(ValueError):
            BenchMetric("m", 1.0, tolerance=-0.1)

    def test_roundtrip_through_json_file(self, tmp_path):
        report = BenchReport(metadata={"suite": "test", "seed": 7})
        report.record("a.bytes", 1000, unit="bytes", better="lower", tolerance=0.10)
        report.record("a.crc", 123456, better="near", tolerance=0.0)
        report.record("a.mean", 0.01, kind="timing", better="lower", tolerance=0.25)
        path = tmp_path / "bench.json"
        report.write(path)

        loaded = load_report(path)
        assert loaded.metadata == {"suite": "test", "seed": 7}
        assert loaded.metrics == report.metrics
        assert loaded.to_dict()["schema"] == SCHEMA

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unsupported bench schema"):
            BenchReport.from_dict({"schema": "repro-bench/99", "metrics": []})


class TestCompare:
    def test_within_band_passes(self):
        baseline = make_report(bytes=1000)
        candidate = make_report(bytes=1099)  # +9.9% < 10%
        comparison = compare_reports(baseline, candidate)
        assert comparison.ok
        assert comparison.compared == 1
        assert comparison.regressions == []

    def test_lower_gate_fails_above_band(self):
        comparison = compare_reports(make_report(bytes=1000), make_report(bytes=1101))
        assert not comparison.ok
        (regression,) = comparison.regressions
        assert regression.gating
        assert "baseline +10%" in regression.limit

    def test_lower_gate_allows_improvement(self):
        comparison = compare_reports(make_report(bytes=1000), make_report(bytes=10))
        assert comparison.ok

    def test_higher_gate(self):
        baseline = BenchReport()
        baseline.record("throughput", 100.0, better="higher", tolerance=0.10)
        worse = BenchReport()
        worse.record("throughput", 89.0, better="higher", tolerance=0.10)
        better = BenchReport()
        better.record("throughput", 150.0, better="higher", tolerance=0.10)
        assert not compare_reports(baseline, worse).ok
        assert compare_reports(baseline, better).ok

    def test_near_zero_tolerance_is_exact(self):
        baseline = BenchReport()
        baseline.record("crc", 123456, better="near", tolerance=0.0)
        same = BenchReport()
        same.record("crc", 123456, better="near", tolerance=0.0)
        drifted = BenchReport()
        drifted.record("crc", 123457, better="near", tolerance=0.0)
        assert compare_reports(baseline, same).ok
        comparison = compare_reports(baseline, drifted)
        assert not comparison.ok
        assert comparison.regressions[0].limit == "exact match required"

    def test_near_band_is_two_sided(self):
        baseline = BenchReport()
        baseline.record("count", 100.0, better="near", tolerance=0.10)
        low = BenchReport()
        low.record("count", 85.0, better="near", tolerance=0.10)
        high = BenchReport()
        high.record("count", 115.0, better="near", tolerance=0.10)
        inside = BenchReport()
        inside.record("count", 105.0, better="near", tolerance=0.10)
        assert not compare_reports(baseline, low).ok
        assert not compare_reports(baseline, high).ok
        assert compare_reports(baseline, inside).ok

    def test_missing_metric_is_a_failure(self):
        comparison = compare_reports(make_report(bytes=1000), BenchReport())
        assert not comparison.ok
        assert comparison.missing == ["bytes"]
        assert any("missing from candidate" in line for line in comparison.describe())

    def test_extra_candidate_metrics_ignored(self):
        candidate = make_report(bytes=1000, new_metric=5)
        assert compare_reports(make_report(bytes=1000), candidate).ok

    def test_timing_kind_reports_but_does_not_gate(self):
        baseline = BenchReport()
        baseline.record("mean", 0.010, kind="timing", better="lower", tolerance=0.25)
        slow = BenchReport()
        slow.record("mean", 0.050, kind="timing", better="lower", tolerance=0.25)
        comparison = compare_reports(baseline, slow)
        assert comparison.ok  # out of band but non-gating
        (regression,) = comparison.regressions
        assert not regression.gating
        assert regression.describe().startswith("[info]")

    def test_baseline_contract_governs(self):
        # A candidate claiming a looser tolerance cannot widen the gate.
        baseline = BenchReport()
        baseline.record("bytes", 1000, better="lower", tolerance=0.10)
        candidate = BenchReport()
        candidate.record("bytes", 2000, better="lower", tolerance=5.0)
        assert not compare_reports(baseline, candidate).ok
