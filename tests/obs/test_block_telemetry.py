"""BlockTelemetry integration: engine hooks, traces, and the golden replay.

The last class is the PR's zero-drift acceptance gate: the Figure 8/11
replays must still reproduce ``golden_replay.json`` *exactly* with
telemetry attached, and the telemetry's own series must agree with the
fixture — observing a pipeline may never change it.
"""

import json
import random
from pathlib import Path

import pytest

from repro.core.engine import BlockEngine, CodecExecutor
from repro.experiments.replay import (
    figure8_commercial_replay,
    figure11_molecular_replay,
)
from repro.obs import BlockTelemetry, MetricsRegistry, TraceWriter, read_trace
from repro.obs.block import (
    BLOCK_RATIO,
    BLOCKS_TOTAL,
    BYTES_IN_TOTAL,
    BYTES_OUT_TOTAL,
    COMPRESSION_SECONDS,
    FALLBACKS_TOTAL,
    record_execution,
)

GOLDEN = json.loads(
    (Path(__file__).parent.parent / "core" / "golden_replay.json").read_text()
)

COMPRESSIBLE = b"abab" * 1024
INCOMPRESSIBLE = bytes(random.Random(20040431).randrange(256) for _ in range(4096))


class TestRecordExecution:
    def test_counters_and_histograms_land_under_labels(self):
        registry = MetricsRegistry()
        record_execution(
            registry,
            channel="test",
            method="lempel-ziv",
            requested_method="lempel-ziv",
            original_size=1000,
            compressed_size=400,
            compression_seconds=0.02,
            decompression_seconds=0.01,
        )
        labels = {"channel": "test", "method": "lempel-ziv"}
        assert registry.counter(BLOCKS_TOTAL).value(**labels) == 1
        assert registry.counter(BYTES_IN_TOTAL).value(**labels) == 1000
        assert registry.counter(BYTES_OUT_TOTAL).value(**labels) == 400
        assert registry.histogram(COMPRESSION_SECONDS).snapshot(**labels)["count"] == 1
        ratio = registry.get(BLOCK_RATIO).snapshot(**labels)
        assert ratio["sum"] == pytest.approx(0.4)
        # no fallback happened, so no fallback series exists
        assert registry.counter(FALLBACKS_TOTAL).total() == 0

    def test_fallback_counter_keeps_requested_method(self):
        registry = MetricsRegistry()
        record_execution(
            registry,
            channel="test",
            method="none",
            requested_method="huffman",
            original_size=1000,
            compressed_size=1000,
            compression_seconds=0.01,
            fell_back=True,
        )
        fallbacks = registry.counter(FALLBACKS_TOTAL)
        assert fallbacks.value(channel="test", method="huffman") == 1
        # the execution itself is counted under the shipped method
        assert registry.counter(BLOCKS_TOTAL).value(channel="test", method="none") == 1


class TestEngineIntegration:
    def test_observer_sees_every_executed_block(self):
        telemetry = BlockTelemetry(channel="engine-test")
        engine = BlockEngine(observers=[telemetry])
        engine.execute(COMPRESSIBLE, method="lempel-ziv")
        engine.execute(COMPRESSIBLE, method="none")
        assert telemetry.blocks_seen == 2
        assert telemetry.method_series() == ["lempel-ziv", "none"]
        assert telemetry.original_size_series() == [len(COMPRESSIBLE)] * 2
        registry = telemetry.registry
        assert registry.counter(BLOCKS_TOTAL).total() == 2
        assert (
            registry.counter(BYTES_IN_TOTAL).value(
                channel="engine-test", method="lempel-ziv"
            )
            == len(COMPRESSIBLE)
        )

    def test_expansion_guard_fallback_is_counted(self):
        class ExpandingCodec:
            name = "lempel-ziv"

            def compress(self, data):
                return data + b"!"

            def decompress(self, data):
                return data[:-1]

        telemetry = BlockTelemetry(channel="engine-test")
        executor = CodecExecutor(expansion_fallback=True)
        engine = BlockEngine(executor=executor, observers=[telemetry])
        _, stats = engine.execute(
            INCOMPRESSIBLE, method="lempel-ziv", codec=ExpandingCodec()
        )
        assert stats.fell_back, "an expanding codec must trip the expansion guard"
        fallbacks = telemetry.registry.counter(FALLBACKS_TOTAL)
        assert fallbacks.value(channel="engine-test", method="lempel-ziv") == 1
        assert telemetry.method_series() == ["none"]

    def test_detached_observer_stops_recording(self):
        telemetry = BlockTelemetry()
        engine = BlockEngine()
        detach = engine.add_observer(telemetry)
        engine.execute(COMPRESSIBLE, method="none")
        detach()
        engine.execute(COMPRESSIBLE, method="none")
        assert telemetry.blocks_seen == 1

    def test_trace_events_mirror_the_stats(self):
        trace = TraceWriter()
        telemetry = BlockTelemetry(trace=trace, channel="traced")
        engine = BlockEngine(observers=[telemetry])
        engine.execute(COMPRESSIBLE, method="lempel-ziv")
        import io

        (record,) = read_trace(io.StringIO(trace.getvalue()))
        assert record["type"] == "event"
        assert record["name"] == "block"
        assert record["channel"] == "traced"
        assert record["method"] == "lempel-ziv"
        assert record["original_size"] == len(COMPRESSIBLE)
        assert record["compressed_size"] < len(COMPRESSIBLE)

    def test_keep_series_false_skips_retention(self):
        telemetry = BlockTelemetry(keep_series=False)
        engine = BlockEngine(observers=[telemetry])
        engine.execute(COMPRESSIBLE, method="none")
        assert telemetry.blocks_seen == 1
        assert telemetry.method_series() == []


class TestGoldenReplayZeroDrift:
    """Observability must not perturb the replays it observes."""

    @pytest.mark.parametrize(
        "name, replay",
        [
            ("figure8", figure8_commercial_replay),
            ("figure11", figure11_molecular_replay),
        ],
    )
    def test_telemetry_matches_golden_and_replay_unchanged(self, name, replay):
        golden = GOLDEN[name]
        telemetry = BlockTelemetry(channel=name)
        result = replay(observers=[telemetry])

        # the replay itself is still bit-exact against the fixture
        assert [r.method for r in result.records] == golden["methods"]
        assert [r.compressed_size for r in result.records] == golden["compressed_sizes"]
        assert [r.original_size for r in result.records] == golden["original_sizes"]
        assert [r.compression_time for r in result.records] == golden["compression_times"]

        # and the telemetry recorded the identical series
        assert telemetry.method_series() == golden["methods"]
        assert telemetry.original_size_series() == golden["original_sizes"]
        assert telemetry.compressed_size_series() == golden["compressed_sizes"]
        assert telemetry.blocks_seen == len(golden["methods"])

        # registry aggregates are consistent with the fixture totals
        registry = telemetry.registry
        assert registry.counter(BLOCKS_TOTAL).total() == len(golden["methods"])
        assert registry.counter(BYTES_OUT_TOTAL).total() == sum(
            golden["compressed_sizes"]
        )
