"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _pick_method, _unwrap, _wrap, main
from repro.data.commercial import CommercialDataGenerator
from repro.data.molecular import MolecularDataGenerator


@pytest.fixture()
def sample_file(tmp_path):
    path = tmp_path / "sample.xml"
    path.write_bytes(CommercialDataGenerator(seed=31).xml_block(32 * 1024))
    return path


class TestEnvelope:
    def test_roundtrip(self):
        method, payload = _unwrap(_wrap("huffman", b"\x00\x01payload"))
        assert method == "huffman"
        assert payload == b"\x00\x01payload"

    def test_bad_magic_exits(self):
        with pytest.raises(SystemExit):
            _unwrap(b"NOPE rest")

    def test_overlong_varint_length_exits(self):
        # \x87\x00 is a non-canonical two-byte encoding of 7.
        with pytest.raises(SystemExit, match="corrupt envelope"):
            _unwrap(b"RPRZ" + b"\x87\x00" + b"huffmanpayload")


class TestPickMethod:
    def test_repetitive_data_picks_dictionary(self):
        data = CommercialDataGenerator(seed=1).xml_block(32 * 1024)
        assert _pick_method(data) in ("burrows-wheeler", "lempel-ziv")

    def test_random_data_picks_none(self):
        import random

        rng = random.Random(3)
        data = bytes(rng.getrandbits(8) for _ in range(16 * 1024))
        assert _pick_method(data) == "none"


class TestCompressDecompress:
    def test_roundtrip_adaptive(self, sample_file, tmp_path, capsys):
        out = tmp_path / "c.rprz"
        restored = tmp_path / "restored.xml"
        assert main(["compress", str(sample_file), "-o", str(out)]) == 0
        assert main(["decompress", str(out), "-o", str(restored)]) == 0
        assert restored.read_bytes() == sample_file.read_bytes()
        stdout = capsys.readouterr().out
        assert "via" in stdout

    def test_roundtrip_explicit_method(self, sample_file, tmp_path):
        out = tmp_path / "c.rprz"
        restored = tmp_path / "r.xml"
        main(["compress", str(sample_file), "-o", str(out), "--method", "lzw"])
        main(["decompress", str(out), "-o", str(restored)])
        assert restored.read_bytes() == sample_file.read_bytes()

    def test_default_output_names(self, sample_file, tmp_path):
        main(["compress", str(sample_file)])
        envelope = tmp_path / "sample.xml.rprz"
        assert envelope.exists()
        # decompressing in place restores the default name
        target = tmp_path / "sample.xml"
        target.unlink()
        main(["decompress", str(envelope)])
        assert target.exists()

    def test_unknown_method_raises(self, sample_file):
        from repro.compression.base import CodecError

        with pytest.raises(CodecError):
            main(["compress", str(sample_file), "--method", "zpaq"])


class TestAnalyze:
    def test_reports_profile(self, sample_file, capsys):
        assert main(["analyze", str(sample_file)]) == 0
        out = capsys.readouterr().out
        assert "entropy" in out
        assert "recommended" in out

    def test_ratios_flag(self, sample_file, capsys):
        main(["analyze", str(sample_file), "--ratios"])
        out = capsys.readouterr().out
        assert "burrows-wheeler" in out


class TestMethods:
    def test_lists_registered(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("huffman", "lempel-ziv", "burrows-wheeler", "lzw"):
            assert name in out


class TestReplay:
    def test_commercial_replay_summary(self, capsys):
        assert main(["replay", "--blocks", "8", "--interval", "0"]) == 0
        out = capsys.readouterr().out
        assert "total_time_s" in out
        assert "methods:" in out

    def test_series_flag(self, capsys):
        main(["replay", "--blocks", "8", "--series"])
        out = capsys.readouterr().out
        assert "method ->" in out

    def test_molecular_dataset(self, capsys):
        assert main(["replay", "--dataset", "molecular", "--blocks", "6"]) == 0
        assert "molecular" in capsys.readouterr().out

    def test_faults_flag_injects_and_reports(self, tmp_path, capsys):
        from repro.netsim.faults import FaultPlan, FaultRule

        plan_path = tmp_path / "plan.json"
        FaultPlan(
            [FaultRule(kind="drop", index=2), FaultRule(kind="delay", index=4, delay=0.5)],
            seed=11,
            name="cli-smoke",
        ).dump(str(plan_path))
        assert main(
            ["replay", "--blocks", "8", "--interval", "0", "--faults", str(plan_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "faults: plan=cli-smoke seed=11" in out
        assert "'drop': 1" in out
        assert "'delay': 1" in out

    def test_faults_flag_is_deterministic(self, tmp_path, capsys):
        from repro.netsim.faults import FaultPlan, FaultRule

        plan_path = tmp_path / "plan.json"
        FaultPlan([FaultRule(kind="drop", probability=0.3)], seed=5).dump(str(plan_path))
        args = ["replay", "--blocks", "8", "--interval", "0", "--faults", str(plan_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_trace_writes_one_event_per_block(self, tmp_path, capsys):
        from repro.obs import read_trace

        path = tmp_path / "replay.jsonl"
        assert main(["replay", "--blocks", "8", "--trace", str(path)]) == 0
        records = list(read_trace(path))
        blocks = [r for r in records if r["name"] == "block"]
        spans = [r for r in records if r["type"] == "span"]
        assert len(blocks) == 8
        assert len(spans) == 1
        assert spans[0]["name"] == "replay"
        for record in blocks:
            assert record["method"]
            assert record["original_size"] > 0


class TestStats:
    def test_dumps_registry_json(self, capsys):
        import json

        assert main(["stats", "--blocks", "8", "--interval", "0"]) == 0
        registry = json.loads(capsys.readouterr().out)
        assert registry["repro_blocks_total"]["kind"] == "counter"
        series = registry["repro_blocks_total"]["series"]
        assert sum(entry["value"] for entry in series) == 8
        # series are labeled with the dataset as the channel
        assert all(entry["labels"]["channel"] == "commercial" for entry in series)
        assert "repro_block_compression_seconds" in registry


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--blocks", "8", "-o", str(out)]) == 0
        document = out.read_text()
        assert "# Reproduction report" in document
        assert "Headline" in document


class TestFigure:
    @pytest.mark.parametrize("number", [1, 5, 7])
    def test_printable_figures(self, number, capsys):
        assert main(["figure", str(number)]) == 0
        assert capsys.readouterr().out.strip()

    def test_unknown_figure_exits(self):
        with pytest.raises(SystemExit):
            main(["figure", "12"])


class TestReplayEdgeBlocks:
    """Empty and single-block streams must flow through cleanly."""

    @pytest.mark.parametrize("blocks", [0, 1])
    def test_replay(self, blocks, capsys):
        assert main(["replay", "--blocks", str(blocks), "--interval", "0"]) == 0
        out = capsys.readouterr().out
        assert f"blocks={blocks}" in out
        assert "total_time_s" in out

    @pytest.mark.parametrize("blocks", [0, 1])
    def test_stats(self, blocks, capsys):
        import json

        assert main(["stats", "--blocks", str(blocks), "--interval", "0"]) == 0
        registry = json.loads(capsys.readouterr().out)
        if blocks:
            series = registry["repro_blocks_total"]["series"]
            assert sum(entry["value"] for entry in series) == blocks
        else:
            assert isinstance(registry, dict)


class TestFuzzCommand:
    def test_short_clean_run(self, capsys):
        assert main(["fuzz", "--seed", "3", "--iterations", "40"]) == 0
        out = capsys.readouterr().out
        assert "seed=3" in out
        assert "crashes=0" in out

    def test_deterministic_output(self, capsys):
        args = ["fuzz", "--seed", "12", "--iterations", "40"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_budget_flag_accepts_suffixes(self, capsys):
        assert main(["fuzz", "--iterations", "10", "--budget", "1m"]) == 0
        capsys.readouterr()

    def test_bad_budget_exits(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--budget", "soon"])

    def test_replay_committed_corpus(self, capsys):
        from pathlib import Path

        corpus = Path(__file__).parent / "verify" / "crash_corpus.jsonl"
        assert main(["fuzz", "--replay", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "0 still failing" in out

    def test_replay_still_failing_corpus_exits_nonzero(self, tmp_path, capsys):
        from repro.verify.fuzz import CrashEntry, write_corpus

        # "framing" rejects this only with CorruptStreamError; fabricate an
        # entry claiming an unknown target so replay must flag it.
        entry = CrashEntry(
            id="feedfeedfeed",
            target="no-such-target",
            seed=0,
            iteration=0,
            error_type="IndexError",
            error_message="fabricated",
            data=b"\x00",
        )
        path = tmp_path / "bad.jsonl"
        write_corpus(str(path), [entry])
        assert main(["fuzz", "--replay", str(path)]) == 1
        assert "STILL-FAILING" in capsys.readouterr().out

    def test_crash_corpus_written_on_failure(self, tmp_path, capsys, monkeypatch):
        from repro.verify import fuzz as fuzz_module

        def broken_targets(corpus=None, codec_names=None):
            return [
                fuzz_module.FuzzTarget(
                    name="always-crashes",
                    execute=lambda data: (_ for _ in ()).throw(IndexError("boom")),
                    seeds=(b"seed",),
                )
            ]

        monkeypatch.setattr(fuzz_module, "build_default_targets", broken_targets)
        out_path = tmp_path / "crashes.jsonl"
        assert main(
            ["fuzz", "--iterations", "5", "--corpus-out", str(out_path)]
        ) == 1
        assert out_path.exists()
        [entry] = fuzz_module.load_corpus(str(out_path))
        assert entry.error_type == "IndexError"
        assert "CRASH" in capsys.readouterr().out


class TestPlacementCommand:
    def test_json_reproduces_the_breakdown(self, capsys):
        import json

        assert main(
            ["placement", "--blocks", "4", "--links", "1gbit", "1mbit", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["failures"] == []
        # 2 links x 4 modes (producer/raw/consumer/auto).
        assert len(payload["cells"]) == 8
        by_key = {(c["link"], c["mode"]): c for c in payload["cells"]}
        for link in ("1gbit", "1mbit"):
            producer = by_key[(link, "producer")]
            consumer = by_key[(link, "consumer")]
            auto = by_key[(link, "auto")]
            assert auto["makespan"] <= producer["makespan"] * (1 + 1e-9)
            assert consumer["compress_seconds"] == 0.0
            assert consumer["downstream_crc32"] == producer["downstream_crc32"]

    def test_human_table(self, capsys):
        assert main(["placement", "--blocks", "3", "--links", "1gbit"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out
        assert "ok: auto <= always-producer" in out

    def test_replay_accepts_placement_flags(self, capsys):
        assert main(
            [
                "replay", "--blocks", "4", "--placement", "auto",
                "--interference", "0.15", "--link", "1gbit",
            ]
        ) == 0
        assert "blocks" in capsys.readouterr().out
