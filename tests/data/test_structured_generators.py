"""Unit tests for the structured-workload generators and sniffers."""

from repro.data.analysis import (
    looks_like_log_lines,
    looks_like_records,
    profile,
    recommended_methods,
)
from repro.data.logs import LogDataGenerator
from repro.data.timeseries import TimeSeriesGenerator


class TestLogDataGenerator:
    def test_deterministic_per_seed(self):
        a = LogDataGenerator(seed=1).log_block(8192)
        b = LogDataGenerator(seed=1).log_block(8192)
        assert a == b

    def test_different_seeds_differ(self):
        a = LogDataGenerator(seed=1).log_block(8192)
        b = LogDataGenerator(seed=2).log_block(8192)
        assert a != b

    def test_reset_rewinds(self):
        gen = LogDataGenerator(seed=3)
        first = gen.log_block(4096)
        gen.reset()
        assert gen.log_block(4096) == first

    def test_block_is_whole_lines(self):
        block = LogDataGenerator().log_block(4096)
        assert len(block) >= 4096
        assert block.endswith(b"\n")
        assert b"\x00" not in block

    def test_timestamps_and_sequences_monotone(self):
        block = LogDataGenerator(seed=5).log_block(16384)
        stamps, sequences = [], []
        for line in block.splitlines():
            head, seq_field = line.split(b" ", 2)[:2]
            stamps.append(int(head.split(b"=")[1]))
            sequences.append(int(seq_field.split(b"=")[1]))
        assert stamps == sorted(stamps)
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_stream_blocks_exact_size(self):
        blocks = list(LogDataGenerator().stream(10000, 5))
        assert len(blocks) == 5
        assert all(len(b) == 10000 for b in blocks)

    def test_sniffer_recognizes_logs(self):
        block = next(iter(LogDataGenerator(seed=7).stream(32 * 1024, 1)))
        assert looks_like_log_lines(block)
        assert looks_like_records(block) is None
        methods = recommended_methods(profile(block))
        assert methods[0] == "template"


class TestTimeSeriesGenerator:
    def test_deterministic_per_seed(self):
        a = TimeSeriesGenerator(seed=1).records_block(8192)
        b = TimeSeriesGenerator(seed=1).records_block(8192)
        assert a == b

    def test_reset_rewinds(self):
        gen = TimeSeriesGenerator(seed=3)
        first = gen.records_block(4096)
        gen.reset()
        assert gen.records_block(4096) == first

    def test_block_is_whole_records(self):
        block = TimeSeriesGenerator().records_block(4096)
        assert len(block) >= 4096
        assert len(block) % TimeSeriesGenerator.RECORD_WIDTH == 0

    def test_first_channel_is_monotone_counter(self):
        import struct

        block = TimeSeriesGenerator(seed=5).records_block(16384)
        width = TimeSeriesGenerator.RECORD_WIDTH
        rows = [
            struct.unpack("<8Q", block[i : i + width])
            for i in range(0, len(block), width)
        ]
        timestamps = [row[0] for row in rows]
        assert timestamps == sorted(timestamps)

    def test_stream_blocks_exact_size(self):
        blocks = list(TimeSeriesGenerator().stream(16384, 4))
        assert len(blocks) == 4
        assert all(len(b) == 16384 for b in blocks)

    def test_sniffer_recognizes_records(self):
        block = next(iter(TimeSeriesGenerator(seed=7).stream(32 * 1024, 1)))
        assert not looks_like_log_lines(block)
        assert looks_like_records(block) == TimeSeriesGenerator.RECORD_WIDTH
        methods = recommended_methods(profile(block))
        assert methods[0] == "columnar"
