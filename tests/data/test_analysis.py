"""Unit tests for the data-characteristic analysis (entropy / repetition)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.analysis import (
    DataProfile,
    profile,
    recommended_methods,
    repetition_fraction,
    shannon_entropy,
)


class TestEntropy:
    def test_empty(self):
        assert shannon_entropy(b"") == 0.0

    def test_single_symbol_zero_entropy(self):
        assert shannon_entropy(b"a" * 1000) == 0.0

    def test_uniform_two_symbols_one_bit(self):
        assert shannon_entropy(b"ab" * 500) == pytest.approx(1.0)

    def test_uniform_256_symbols_eight_bits(self):
        assert shannon_entropy(bytes(range(256)) * 10) == pytest.approx(8.0)

    def test_bounded(self, corpus):
        for data in corpus.values():
            assert 0.0 <= shannon_entropy(data) <= 8.0

    @given(st.binary(min_size=1, max_size=2000))
    @settings(max_examples=50)
    def test_entropy_in_range_property(self, data):
        assert 0.0 <= shannon_entropy(data) <= 8.0


class TestRepetition:
    def test_too_short(self):
        assert repetition_fraction(b"ab") == 0.0

    def test_pure_repetition_near_one(self):
        assert repetition_fraction(b"abcd" * 500) > 0.95

    def test_no_repetition_near_zero(self):
        data = bytes(range(256)) + bytes(range(255, -1, -1))
        # every 4-gram unique in this construction? close to it
        assert repetition_fraction(data) < 0.2

    def test_random_data_low(self, random_block):
        assert repetition_fraction(random_block) < 0.1

    def test_commercial_high(self, commercial_block):
        assert repetition_fraction(commercial_block[:32768]) > 0.5

    def test_sample_size_guard(self):
        with pytest.raises(ValueError):
            repetition_fraction(b"\x00" * (2**20 + 1))

    @given(st.binary(max_size=2000))
    @settings(max_examples=50)
    def test_fraction_in_range_property(self, data):
        assert 0.0 <= repetition_fraction(data) <= 1.0


class TestProfileAndRecommendation:
    def test_both_characteristics(self):
        data = b"abab" * 4000  # low entropy AND repetitive
        p = profile(data)
        assert p.characteristic == "both"
        assert recommended_methods(p)[0] == "burrows-wheeler"

    def test_incompressible(self, random_block):
        p = profile(random_block)
        assert p.characteristic == "incompressible"
        assert recommended_methods(p) == ["none"]

    def test_repetitive_but_high_entropy(self, commercial_block):
        p = profile(commercial_block[:32768])
        assert p.repetitive
        assert "lempel-ziv" in recommended_methods(p)

    def test_low_entropy_iid(self):
        import random as _random

        rng = _random.Random(2)
        data = bytes(rng.choices([0, 1, 2], weights=[90, 8, 2], k=16384))
        p = profile(data)
        assert p.low_entropy
        recommendations = recommended_methods(p)
        assert "huffman" in recommendations
        assert "burrows-wheeler" in recommendations

    def test_dataclass_fields(self):
        p = DataProfile(entropy_bits_per_byte=3.0, repetition=0.9)
        assert p.low_entropy and p.repetitive
        assert p.characteristic == "both"
