"""Unit tests for the PBIO-like binary record format."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.pbio import (
    Field,
    FieldType,
    PbioError,
    RecordFormat,
    decode_records,
    encode_records,
)

POINT = RecordFormat(
    "point",
    [("x", FieldType.FLOAT64), ("y", FieldType.FLOAT64), ("label", FieldType.STRING)],
)


class TestRecordFormat:
    def test_field_names(self):
        assert POINT.field_names() == ["x", "y", "label"]

    def test_equality(self):
        other = RecordFormat(
            "point",
            [("x", FieldType.FLOAT64), ("y", FieldType.FLOAT64), ("label", FieldType.STRING)],
        )
        assert POINT == other

    def test_inequality_on_field_types(self):
        other = RecordFormat("point", [("x", FieldType.FLOAT32)])
        assert POINT != other

    def test_empty_fields_rejected(self):
        with pytest.raises(PbioError):
            RecordFormat("empty", [])

    def test_duplicate_field_rejected(self):
        with pytest.raises(PbioError):
            RecordFormat("dup", [("a", FieldType.INT32), ("a", FieldType.INT64)])

    def test_empty_name_rejected(self):
        with pytest.raises(PbioError):
            RecordFormat("", [("a", FieldType.INT32)])

    def test_long_field_name_rejected(self):
        with pytest.raises(PbioError):
            Field("x" * 300, FieldType.INT32)

    def test_schema_roundtrip(self):
        blob = POINT.to_bytes()
        restored, offset = RecordFormat.from_bytes(blob, 0)
        assert restored == POINT
        assert offset == len(blob)


class TestScalars:
    def test_int_roundtrip(self):
        fmt = RecordFormat("ints", [("i32", FieldType.INT32), ("i64", FieldType.INT64)])
        records = [{"i32": -(2**31), "i64": 2**62}, {"i32": 2**31 - 1, "i64": -1}]
        _, decoded = decode_records(encode_records(fmt, records))
        assert decoded == records

    def test_int32_overflow_rejected(self):
        fmt = RecordFormat("ints", [("v", FieldType.INT32)])
        with pytest.raises(PbioError):
            encode_records(fmt, [{"v": 2**40}])

    def test_float_roundtrip(self):
        fmt = RecordFormat("f", [("v", FieldType.FLOAT64)])
        for value in (0.0, -1.5, math.pi, 1e300, float("inf")):
            _, decoded = decode_records(encode_records(fmt, [{"v": value}]))
            assert decoded[0]["v"] == value

    def test_float_nan(self):
        fmt = RecordFormat("f", [("v", FieldType.FLOAT64)])
        _, decoded = decode_records(encode_records(fmt, [{"v": float("nan")}]))
        assert math.isnan(decoded[0]["v"])

    def test_float32_precision(self):
        fmt = RecordFormat("f", [("v", FieldType.FLOAT32)])
        _, decoded = decode_records(encode_records(fmt, [{"v": 0.5}]))
        assert decoded[0]["v"] == 0.5


class TestStringsAndBytes:
    def test_string_roundtrip(self):
        fmt = RecordFormat("s", [("v", FieldType.STRING)])
        for value in ("", "hello", "ünïcødé ✓", "x" * 10000):
            _, decoded = decode_records(encode_records(fmt, [{"v": value}]))
            assert decoded[0]["v"] == value

    def test_bytes_roundtrip(self):
        fmt = RecordFormat("b", [("v", FieldType.BYTES)])
        payload = bytes(range(256))
        _, decoded = decode_records(encode_records(fmt, [{"v": payload}]))
        assert decoded[0]["v"] == payload


class TestArrays:
    def test_float64_array(self):
        fmt = RecordFormat("a", [("v", FieldType.FLOAT64_ARRAY)])
        values = [0.0, 1.25, -3.5, 1e10]
        _, decoded = decode_records(encode_records(fmt, [{"v": values}]))
        assert decoded[0]["v"] == values

    def test_int32_array_empty(self):
        fmt = RecordFormat("a", [("v", FieldType.INT32_ARRAY)])
        _, decoded = decode_records(encode_records(fmt, [{"v": []}]))
        assert decoded[0]["v"] == []

    def test_array_item_overflow_rejected(self):
        fmt = RecordFormat("a", [("v", FieldType.INT32_ARRAY)])
        with pytest.raises(PbioError):
            encode_records(fmt, [{"v": [2**40]}])


class TestBufferLevel:
    def test_zero_records(self):
        buffer = encode_records(POINT, [])
        fmt, decoded = decode_records(buffer)
        assert fmt == POINT
        assert decoded == []

    def test_missing_field_rejected(self):
        with pytest.raises(PbioError):
            encode_records(POINT, [{"x": 1.0, "y": 2.0}])

    def test_bad_magic_rejected(self):
        buffer = bytearray(encode_records(POINT, []))
        buffer[0] ^= 0xFF
        with pytest.raises(PbioError):
            decode_records(bytes(buffer))

    def test_trailing_bytes_rejected(self):
        buffer = encode_records(POINT, []) + b"\x00"
        with pytest.raises(PbioError):
            decode_records(buffer)

    def test_truncated_buffer_rejected(self):
        buffer = encode_records(POINT, [{"x": 1.0, "y": 2.0, "label": "p"}])
        with pytest.raises(PbioError):
            decode_records(buffer[:-3])

    def test_self_describing(self):
        # A receiver with no schema knowledge reconstructs everything.
        buffer = encode_records(POINT, [{"x": 1.0, "y": -2.0, "label": "origin"}])
        fmt, records = decode_records(buffer)
        assert fmt.name == "point"
        assert [f.type for f in fmt.fields] == [
            FieldType.FLOAT64,
            FieldType.FLOAT64,
            FieldType.STRING,
        ]
        assert records[0]["label"] == "origin"


@given(
    st.lists(
        st.fixed_dictionaries(
            {
                "id": st.integers(min_value=-(2**31), max_value=2**31 - 1),
                "name": st.text(max_size=40),
                "values": st.lists(
                    st.floats(allow_nan=False, width=64), max_size=12
                ),
            }
        ),
        max_size=20,
    )
)
@settings(max_examples=50)
def test_roundtrip_property(records):
    fmt = RecordFormat(
        "prop",
        [
            ("id", FieldType.INT32),
            ("name", FieldType.STRING),
            ("values", FieldType.FLOAT64_ARRAY),
        ],
    )
    _, decoded = decode_records(encode_records(fmt, records))
    assert decoded == records
