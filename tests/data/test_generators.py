"""Unit tests for the commercial and molecular dataset generators."""

import pytest

from repro.compression import get_codec
from repro.data.commercial import AIRPORTS, CommercialDataGenerator
from repro.data.molecular import FRAME_FORMAT, MolecularDataGenerator
from repro.data.pbio import decode_records


class TestCommercialGenerator:
    def test_deterministic_per_seed(self):
        a = CommercialDataGenerator(seed=1).xml_block(8192)
        b = CommercialDataGenerator(seed=1).xml_block(8192)
        assert a == b

    def test_different_seeds_differ(self):
        a = CommercialDataGenerator(seed=1).xml_block(8192)
        b = CommercialDataGenerator(seed=2).xml_block(8192)
        assert a != b

    def test_reset_rewinds(self):
        gen = CommercialDataGenerator(seed=3)
        first = gen.xml_block(4096)
        gen.reset()
        assert gen.xml_block(4096) == first

    def test_transaction_fields(self):
        txn = CommercialDataGenerator().transaction()
        assert txn["origin"] in AIRPORTS
        assert txn["destination"] in AIRPORTS
        assert txn["origin"] != txn["destination"]
        assert len(txn["passengers"]) == len(txn["seats"])
        assert 79.0 <= txn["fare"] <= 1450.0

    def test_xml_is_well_formed(self):
        import xml.etree.ElementTree as ET

        block = CommercialDataGenerator().xml_block(16384)
        root = ET.fromstring(block)
        assert root.tag == "operational-information-system"
        assert len(root) > 0

    def test_stream_blocks_exact_size(self):
        blocks = list(CommercialDataGenerator().stream(10000, 5))
        assert len(blocks) == 5
        assert all(len(b) == 10000 for b in blocks)

    def test_stream_is_continuous(self):
        # Two consecutive stream blocks join without duplication.
        gen1 = CommercialDataGenerator(seed=9)
        joined = b"".join(gen1.stream(5000, 4))
        gen2 = CommercialDataGenerator(seed=9)
        single = next(gen2.stream(20000, 1))
        assert joined == single

    def test_compressibility_signature(self):
        """Figure 2 shape: BW < LZ < Huffman, all well away from 0 and 1."""
        block = CommercialDataGenerator().xml_block(128 * 1024)
        bw = get_codec("burrows-wheeler").ratio(block)
        lz = get_codec("lempel-ziv").ratio(block)
        huff = get_codec("huffman").ratio(block)
        assert 0.15 < bw < lz < huff < 0.80


class TestMolecularGenerator:
    def test_deterministic_per_seed(self):
        a = MolecularDataGenerator(256, seed=5).coordinates_block()
        b = MolecularDataGenerator(256, seed=5).coordinates_block()
        assert a == b

    def test_block_sizes(self):
        gen = MolecularDataGenerator(100)
        assert len(gen.coordinates_block()) == 100 * 3 * 8
        assert len(gen.velocities_block()) == 100 * 3 * 4
        assert len(gen.types_block()) == 100 * 4

    def test_positions_stay_in_box(self):
        import numpy as np

        gen = MolecularDataGenerator(128, box=10.0)
        for _ in range(50):
            gen.advance()
        coords = np.frombuffer(gen.coordinates_block(), dtype="<f8")
        assert np.all(coords >= 0.0) and np.all(coords < 10.0)

    def test_invalid_atom_count(self):
        with pytest.raises(ValueError):
            MolecularDataGenerator(0)

    def test_frame_is_valid_pbio(self):
        gen = MolecularDataGenerator(64)
        fmt, records = decode_records(gen.frame())
        assert fmt == FRAME_FORMAT
        assert len(records) == 1
        assert len(records[0]["coordinates"]) == 64 * 3
        assert len(records[0]["types"]) == 64

    def test_advance_changes_coordinates(self):
        gen = MolecularDataGenerator(64)
        before = gen.coordinates_block()
        gen.advance()
        assert gen.coordinates_block() != before

    def test_types_constant_across_steps(self):
        gen = MolecularDataGenerator(64)
        before = gen.types_block()
        gen.advance()
        assert gen.types_block() == before

    def test_stream_block_sizes(self):
        blocks = list(MolecularDataGenerator(128).stream(4096, 6))
        assert len(blocks) == 6
        assert all(len(b) == 4096 for b in blocks)

    def test_figure6_field_signature(self):
        """Coordinates poor, velocities mid, types excellent (Figure 6)."""
        gen = MolecularDataGenerator(2048)
        huff = get_codec("huffman")
        lz = get_codec("lempel-ziv")
        coords = huff.ratio(gen.coordinates_block())
        velocity = huff.ratio(gen.velocities_block())
        types = lz.ratio(gen.types_block())
        assert coords > 0.80
        assert 0.35 < velocity < coords
        assert types < 0.15

    def test_metadata_blocks_are_repetitive(self):
        """The periodic topology refreshes must trigger dictionary wins."""
        gen = MolecularDataGenerator(2048)
        blocks = list(gen.stream(64 * 1024, 14, metadata_period=3))
        lz = get_codec("lempel-ziv")
        ratios = [len(lz.compress(b)) / len(b) for b in blocks]
        assert min(ratios) < 0.35  # some block is dominated by type tables
        assert max(ratios) > 0.70  # some block is dominated by coordinates
