"""Tests for the multi-core worker layer (pool, pipelined engine, schedule).

The non-negotiable invariant under test: pooled execution produces wire
bytes **identical** to serial execution for every registered codec, in
every pool mode, and keeps producing them (in order) when workers die.
"""

import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BlockEngine, CodecExecutor
from repro.core.workers import (
    DEFAULT_QUEUE_DEPTH,
    PipelinedBlockEngine,
    WorkerPool,
    simulate_pipeline,
)
from repro.compression.registry import available_codecs, get_codec
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.obs.block import (
    PIPELINE_BLOCKS_TOTAL,
    POOL_DEGRADED_TOTAL,
    POOL_TASKS_TOTAL,
)
from repro.obs.metrics import MetricsRegistry


def family_block(method: str, base: bytes) -> bytes:
    """Shape ``base`` so ``method`` accepts it (lossy codecs eat float64)."""
    codec = get_codec(method)
    if codec.family == "lossy":
        import struct

        count = max(8, len(base) // 8)
        return b"".join(
            struct.pack("<d", (b - 128) / 16.0) for b in base[:count]
        )
    return base


@pytest.fixture(scope="module")
def process_pool():
    with WorkerPool(workers=2, mode="processes") as pool:
        yield pool


class TestWorkerPool:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(mode="fibers")

    def test_accepts_tracks_registry(self):
        pool = WorkerPool(workers=1, mode="serial")
        assert pool.accepts("burrows-wheeler")
        assert not pool.accepts("no-such-codec")

    def test_every_registered_codec_is_pool_deterministic(
        self, process_pool, commercial_block
    ):
        """Pooled bytes == in-process bytes for the whole registry."""
        base = commercial_block[: 32 * 1024]
        for method in available_codecs():
            block = family_block(method, base)
            expected = get_codec(method).compress(block)
            payload, seconds = process_pool.run(method, block)
            assert payload == expected, method
            assert seconds >= 0.0, method

    def test_serial_mode_never_spawns(self):
        pool = WorkerPool(workers=3, mode="serial")
        payload, _ = pool.run("huffman", b"serial inline path" * 50)
        assert pool._executor is None
        assert payload == get_codec("huffman").compress(b"serial inline path" * 50)

    def test_metrics_label_pool_mode_and_workers(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=2, mode="serial", registry=registry)
        pool.run("huffman", b"count me" * 100)
        counter = registry.counter(POOL_TASKS_TOTAL)
        assert counter.value(pool_mode="serial") == 1

    def test_broken_pool_degrades_to_serial(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=2, mode="processes", registry=registry)
        data = b"degrade me " * 400
        expected = get_codec("lzw").compress(data)
        assert pool.run("lzw", data)[0] == expected  # spawn workers
        for process in list(pool._executor._processes.values()):
            process.kill()
        assert pool.run("lzw", data)[0] == expected
        assert pool.mode == "serial"
        assert pool.degradations == 1
        assert registry.counter(POOL_DEGRADED_TOTAL).value(pool_mode="processes") == 1
        # Degradation is permanent and keeps answering correctly.
        assert pool.run("lzw", data)[0] == expected


class TestPipelinedBlockEngine:
    def equivalent(self, pool, data, method, queue_depth=DEFAULT_QUEUE_DEPTH):
        serial = BlockEngine(
            CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE), block_size=4096
        ).run(data, method=method)
        pipelined = PipelinedBlockEngine(
            CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE, pool=pool),
            block_size=4096,
            pool=pool,
            queue_depth=queue_depth,
        ).run(data, method=method)
        assert [payload for payload, _ in pipelined] == [
            payload for payload, _ in serial
        ]
        assert [stats.index for _, stats in pipelined] == list(range(len(serial)))
        assert [
            (s.method, s.original_size, s.compressed_size, s.compression_seconds)
            for _, s in pipelined
        ] == [
            (s.method, s.original_size, s.compressed_size, s.compression_seconds)
            for _, s in serial
        ]

    def test_serial_pool_matches_block_engine(self, commercial_block):
        pool = WorkerPool(workers=1, mode="serial")
        self.equivalent(pool, commercial_block, "burrows-wheeler")

    def test_process_pool_matches_block_engine(self, process_pool, commercial_block):
        self.equivalent(process_pool, commercial_block, "burrows-wheeler")

    def test_thread_pool_matches_block_engine(self, commercial_block):
        with WorkerPool(workers=2, mode="threads") as pool:
            self.equivalent(pool, commercial_block, "lempel-ziv")

    def test_queue_depth_one_still_in_order(self, process_pool, commercial_block):
        self.equivalent(process_pool, commercial_block, "huffman", queue_depth=1)

    def test_method_none_bypasses_pool(self):
        registry = MetricsRegistry()
        pool = WorkerPool(workers=1, mode="serial", registry=registry)
        engine = PipelinedBlockEngine(
            CodecExecutor(pool=pool), block_size=4096, pool=pool, registry=registry
        )
        data = b"\x00" * 10000
        out = engine.run(data, method="none")
        assert b"".join(payload for payload, _ in out) == data
        # "none" never becomes a pool task, but still counts as a block.
        assert registry.counter(POOL_TASKS_TOTAL).value(pool_mode="serial") == 0
        assert (
            registry.counter(PIPELINE_BLOCKS_TOTAL).value(
                pool_mode="serial", queue_depth=str(DEFAULT_QUEUE_DEPTH)
            )
            == len(out)
        )

    def test_killed_workers_mid_stream_stay_in_order(self, commercial_block):
        """A pool broken between submissions degrades without corruption."""
        data = commercial_block
        reference = BlockEngine(CodecExecutor(), block_size=4096).run(
            data, method="lzw"
        )
        pool = WorkerPool(workers=2, mode="processes")
        engine = PipelinedBlockEngine(
            CodecExecutor(pool=pool), block_size=4096, pool=pool, queue_depth=4
        )
        pool.run("lzw", b"warm up the workers" * 100)
        for process in list(pool._executor._processes.values()):
            process.kill()
        out = engine.run(data, method="lzw")
        pool.shutdown()
        assert pool.mode == "serial" and pool.degradations >= 1
        assert [payload for payload, _ in out] == [payload for payload, _ in reference]
        assert [stats.index for _, stats in out] == list(range(len(reference)))

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=10, deadline=None)
    def test_random_blocks_identical_to_serial(self, seed):
        import random

        rng = random.Random(seed)
        data = bytes(
            rng.choice(b"aaaabcde\x00\xff") for _ in range(rng.randrange(1, 20000))
        )
        method = rng.choice(["huffman", "lzw", "lempel-ziv", "burrows-wheeler"])
        serial = BlockEngine(CodecExecutor(), block_size=4096).run(data, method=method)
        pool = WorkerPool(workers=2, mode="threads")
        try:
            pipelined = PipelinedBlockEngine(
                CodecExecutor(pool=pool), block_size=4096, pool=pool
            ).run(data, method=method)
        finally:
            pool.shutdown()
        serial_wire = b"".join(payload for payload, _ in serial)
        pipelined_wire = b"".join(payload for payload, _ in pipelined)
        assert zlib.crc32(pipelined_wire) == zlib.crc32(serial_wire)
        assert pipelined_wire == serial_wire


class TestSimulatePipeline:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            simulate_pipeline([1.0], [1.0, 2.0], workers=1)
        with pytest.raises(ValueError):
            simulate_pipeline([1.0], [1.0], workers=0)
        with pytest.raises(ValueError):
            simulate_pipeline([1.0], [1.0], workers=1, queue_depth=0)

    def test_single_worker_single_block(self):
        schedule = simulate_pipeline([2.0], [1.0], workers=1)
        assert schedule.makespan == pytest.approx(3.0)
        assert schedule.serial_seconds == pytest.approx(3.0)
        assert schedule.speedup == pytest.approx(1.0)
        assert schedule.overlap_fraction == pytest.approx(0.0)

    def test_compress_send_overlap_with_one_worker(self):
        # comp 1s + send 1s per block: while block i sends, block i+1
        # compresses, so the steady state advances one block per second.
        schedule = simulate_pipeline([1.0] * 10, [1.0] * 10, workers=1)
        assert schedule.makespan == pytest.approx(11.0)
        assert schedule.speedup == pytest.approx(20.0 / 11.0)

    def test_workers_divide_compression_bound(self):
        schedule = simulate_pipeline([1.0] * 8, [0.25] * 8, workers=4, queue_depth=8)
        # 2 compression waves (1s each) + the last wave's 4 sends.
        assert schedule.makespan == pytest.approx(3.0)
        assert schedule.speedup == pytest.approx(10.0 / 3.0)

    def test_queue_depth_throttles(self):
        # With depth 1 a block cannot compress until its predecessor left
        # the wire: fully sequential regardless of workers.
        schedule = simulate_pipeline([1.0] * 4, [1.0] * 4, workers=4, queue_depth=1)
        assert schedule.makespan == pytest.approx(8.0)
        assert schedule.speedup == pytest.approx(1.0)

    def test_wire_is_the_floor(self):
        schedule = simulate_pipeline([0.1] * 6, [1.0] * 6, workers=4)
        assert schedule.makespan == pytest.approx(6.1)

    @given(
        comp=st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1, max_size=30),
        workers=st.integers(min_value=1, max_value=8),
        depth=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_bounds(self, comp, workers, depth):
        send = [value / 3.0 for value in comp]
        schedule = simulate_pipeline(comp, send, workers=workers, queue_depth=depth)
        # Never faster than the wire or the worker-divided compression,
        # never slower than fully serial execution.
        floor = max(sum(send), sum(comp) / workers)
        assert schedule.makespan + 1e-9 >= floor
        assert schedule.makespan <= schedule.serial_seconds + 1e-9
        assert 0.0 <= schedule.overlap_fraction <= 1.0
