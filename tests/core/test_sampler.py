"""Unit tests for the 4 KB Lempel-Ziv sampling probe."""

import pytest

from repro.core.sampler import DEFAULT_SAMPLE_SIZE, LzSampler, SampleResult
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE, ULTRA_SPARC


class TestSampleResult:
    def test_ratio(self):
        assert SampleResult(4096, 1024, 0.01).ratio == 0.25

    def test_empty_sample_ratio_one(self):
        assert SampleResult(0, 0, 0.0).ratio == 1.0

    def test_reducing_speed(self):
        assert SampleResult(4096, 96, 0.001).reducing_speed == pytest.approx(4e6)

    def test_zero_time_infinite_when_saving(self):
        import math

        assert math.isinf(SampleResult(100, 50, 0.0).reducing_speed)
        assert SampleResult(100, 100, 0.0).reducing_speed == 0.0


class TestLzSampler:
    def test_default_sample_size_is_4kb(self):
        """Paper §2.5: 'compress the first 4KB of the next block'."""
        assert LzSampler().sample_size == DEFAULT_SAMPLE_SIZE == 4096

    def test_only_head_is_sampled(self, commercial_block):
        sampler = LzSampler(sample_size=1024)
        result = sampler.sample(commercial_block)
        assert result.sample_size == 1024

    def test_short_block_sampled_whole(self):
        result = LzSampler().sample(b"short block")
        assert result.sample_size == len(b"short block")

    def test_empty_block(self):
        result = LzSampler().sample(b"")
        assert result.sample_size == 0
        assert result.ratio == 1.0

    def test_compressible_data_low_ratio(self, commercial_block):
        result = LzSampler().sample(commercial_block)
        assert result.ratio < 0.6

    def test_incompressible_data_high_ratio(self, random_block):
        result = LzSampler().sample(random_block)
        assert result.ratio > 0.9

    def test_measured_mode_positive_time(self, commercial_block):
        result = LzSampler().sample(commercial_block)
        assert result.elapsed_seconds > 0

    def test_modeled_mode_deterministic(self, commercial_block):
        sampler = LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        a = sampler.sample(commercial_block)
        b = sampler.sample(commercial_block)
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.elapsed_seconds == pytest.approx(
            DEFAULT_COSTS.compression_time("lempel-ziv", 4096, SUN_FIRE)
        )

    def test_modeled_mode_slower_cpu_slower_sample(self, commercial_block):
        fast = LzSampler(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE).sample(commercial_block)
        slow = LzSampler(cost_model=DEFAULT_COSTS, cpu=ULTRA_SPARC).sample(commercial_block)
        assert slow.elapsed_seconds > fast.elapsed_seconds
        assert slow.ratio == fast.ratio  # ratio is data-dependent only

    def test_too_small_sample_size_rejected(self):
        with pytest.raises(ValueError):
            LzSampler(sample_size=16)

    def test_custom_codec(self):
        from repro.compression.identity import IdentityCodec

        sampler = LzSampler(codec=IdentityCodec())
        result = sampler.sample(b"x" * 8192)
        assert result.ratio == 1.0
