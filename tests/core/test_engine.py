"""Unit tests for the unified execution substrate (repro.core.engine)."""

import pytest

from repro.compression.base import Codec, CodecError
from repro.compression.registry import get_codec
from repro.core.engine import (
    DEFAULT_BLOCK_SIZE,
    BlockEngine,
    CodecExecutor,
    cut_blocks,
    measure,
    measure_decompress,
)
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE, ULTRA_SPARC, CpuModel


class TestMeasurePrimitives:
    def test_measure_times_a_real_run(self, commercial_block):
        result = measure(get_codec("huffman"), commercial_block)
        assert result.codec_name == "huffman"
        assert result.original_size == len(commercial_block)
        assert 0 < result.compressed_size < len(commercial_block)
        assert result.elapsed_seconds >= 0
        assert result.payload is not None

    def test_measure_decompress_round_trips(self, commercial_block):
        codec = get_codec("huffman")
        payload = codec.compress(commercial_block)
        data, seconds = measure_decompress(codec, payload)
        assert data == commercial_block
        assert seconds >= 0


class TestCodecExecutorModes:
    def test_measured_mode_reports_wall_clock(self, commercial_block):
        execution = CodecExecutor().compress("lempel-ziv", commercial_block)
        assert execution.method == "lempel-ziv"
        assert execution.seconds > 0
        assert execution.compressed_size < len(commercial_block)

    def test_cpu_scaled_mode_slows_by_factor(self, commercial_block):
        # A half-speed CPU must report a strictly larger time than the
        # modeled reference for the same (deterministic) cost table.
        fast = CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        slow = CodecExecutor(cost_model=DEFAULT_COSTS, cpu=ULTRA_SPARC)
        t_fast = fast.compress("huffman", commercial_block).seconds
        t_slow = slow.compress("huffman", commercial_block).seconds
        assert t_slow == pytest.approx(
            t_fast * SUN_FIRE.speed_factor / ULTRA_SPARC.speed_factor
        )

    def test_modeled_mode_is_deterministic(self, commercial_block):
        executor = CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        first = executor.compress("burrows-wheeler", commercial_block)
        second = executor.compress("burrows-wheeler", commercial_block)
        assert first.seconds == second.seconds
        assert first.seconds == DEFAULT_COSTS.compression_time(
            "burrows-wheeler", len(commercial_block), SUN_FIRE
        )
        # Sizes are still real codec output, not modeled.
        assert first.payload == second.payload

    def test_modeled_decompression_time_skips_the_codec(self, commercial_block):
        executor = CodecExecutor(cost_model=DEFAULT_COSTS)
        expected = DEFAULT_COSTS.decompression_time("huffman", len(commercial_block))
        got = executor.decompression_time(
            "huffman", len(commercial_block), b"not even a valid payload"
        )
        assert got == expected

    def test_unknown_codec_in_cost_model_raises_without_fallback(self, commercial_block):
        executor = CodecExecutor(cost_model=DEFAULT_COSTS)
        with pytest.raises(KeyError):
            executor.compress("lzw", commercial_block)

    def test_cost_model_fallback_measures_instead(self, commercial_block):
        executor = CodecExecutor(cost_model=DEFAULT_COSTS, cost_model_fallback=True)
        execution = executor.compress("lzw", commercial_block)
        assert execution.method == "lzw"
        assert execution.seconds > 0

    def test_none_shortcut_is_free_and_identity(self, commercial_block):
        execution = CodecExecutor().compress("none", commercial_block)
        assert execution.method == "none"
        assert execution.payload == commercial_block
        assert execution.seconds == 0.0
        assert CodecExecutor().decompression_time("none", 1024, b"") == 0.0


class TestExpansionGuard:
    def test_incompressible_block_falls_back_to_none(self, random_block):
        executor = CodecExecutor(expansion_fallback=True)
        execution = executor.compress("huffman", random_block)
        assert execution.fell_back
        assert execution.method == "none"
        assert execution.requested_method == "huffman"
        assert execution.payload == random_block
        assert execution.ratio == 1.0

    def test_compressible_block_does_not_fall_back(self, commercial_block):
        execution = CodecExecutor(expansion_fallback=True).compress(
            "huffman", commercial_block
        )
        assert not execution.fell_back
        assert execution.method == "huffman"

    def test_guard_off_ships_the_expansion(self, random_block):
        execution = CodecExecutor().compress("huffman", random_block)
        assert execution.method == "huffman"
        assert execution.compressed_size >= len(random_block)


class TestVerify:
    def test_verify_flags_the_execution(self, commercial_block):
        execution = CodecExecutor(verify=True).compress("lempel-ziv", commercial_block)
        assert execution.verified

    def test_verify_raises_on_corrupting_codec(self, commercial_block):
        class LyingCodec(Codec):
            name = "liar"

            def compress(self, data: bytes) -> bytes:
                return data[: len(data) // 2]

            def decompress(self, payload: bytes) -> bytes:
                return payload

        executor = CodecExecutor(verify=True)
        with pytest.raises(CodecError):
            executor.compress("liar", commercial_block, codec=LyingCodec())

    def test_measure_roundtrip_checks_and_times_both_directions(self, commercial_block):
        execution, decompress_seconds = CodecExecutor().measure_roundtrip(
            "huffman", commercial_block
        )
        assert execution.compressed_size < len(commercial_block)
        assert decompress_seconds > 0


class TestCutBlocks:
    def test_exact_multiple(self):
        blocks = list(cut_blocks(b"x" * 4096, 1024))
        assert [len(b) for b in blocks] == [1024] * 4

    def test_short_tail(self):
        blocks = list(cut_blocks(b"x" * 2500, 1024))
        assert [len(b) for b in blocks] == [1024, 1024, 452]

    def test_empty_input_yields_nothing(self):
        assert list(cut_blocks(b"", 1024)) == []

    def test_chunk_iterable_reassembled(self):
        chunks = [b"a" * 700, b"b" * 700, b"c" * 700]
        blocks = list(cut_blocks(chunks, 1024))
        assert b"".join(blocks) == b"".join(chunks)
        assert [len(b) for b in blocks] == [1024, 1024, 52]

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            list(cut_blocks(b"x", 0))


class TestBlockEngine:
    def test_default_block_size_is_the_papers(self):
        assert DEFAULT_BLOCK_SIZE == 128 * 1024
        assert BlockEngine().block_size == DEFAULT_BLOCK_SIZE

    def test_tiny_block_size_rejected(self):
        with pytest.raises(ValueError):
            BlockEngine(block_size=512)

    def test_run_with_fixed_method(self, commercial_block):
        engine = BlockEngine(block_size=16 * 1024)
        results = engine.run(commercial_block, method="huffman")
        assert len(results) == -(-len(commercial_block) // (16 * 1024))
        assert all(stats.method == "huffman" for _, stats in results)
        assert sum(stats.original_size for _, stats in results) == len(commercial_block)
        restored = b"".join(
            get_codec(stats.method).decompress(payload) for payload, stats in results
        )
        assert restored == commercial_block

    def test_selector_consulted_per_block(self, commercial_block):
        seen = []

        def selector(index, block):
            seen.append((index, len(block)))
            return "none" if index % 2 else "huffman"

        engine = BlockEngine(block_size=16 * 1024, selector=selector)
        results = engine.run(commercial_block)
        expected = ["none" if i % 2 else "huffman" for i in range(len(results))]
        assert [stats.method for _, stats in results] == expected
        assert [i for i, _ in seen] == list(range(len(results)))

    def test_no_method_and_no_selector_raises(self):
        with pytest.raises(ValueError):
            BlockEngine().execute(b"x" * 2048)

    def test_observers_receive_stats_and_detach(self, commercial_block):
        engine = BlockEngine(block_size=32 * 1024)
        seen = []
        detach = engine.add_observer(seen.append)
        engine.execute(commercial_block[: 32 * 1024], method="huffman")
        assert len(seen) == 1
        assert seen[0].index == 0
        assert seen[0].method == "huffman"
        assert seen[0].decompression_seconds > 0
        detach()
        engine.execute(commercial_block[: 32 * 1024], method="huffman")
        assert len(seen) == 1

    def test_time_decompression_off_skips_receiver_cost(self, commercial_block):
        engine = BlockEngine(block_size=32 * 1024, time_decompression=False)
        _, stats = engine.execute(commercial_block[: 32 * 1024], method="huffman")
        assert stats.decompression_seconds == 0.0

    def test_engine_with_modeled_executor_is_deterministic(self, commercial_block):
        executor = CodecExecutor(cost_model=DEFAULT_COSTS, cpu=SUN_FIRE)
        engine = BlockEngine(executor=executor, block_size=16 * 1024)
        first = engine.run(commercial_block, method="lempel-ziv")
        second = engine.run(commercial_block, method="lempel-ziv")
        assert [s.compression_seconds for _, s in first] == [
            s.compression_seconds for _, s in second
        ]
        assert [s.compressed_size for _, s in first] == [
            s.compressed_size for _, s in second
        ]
