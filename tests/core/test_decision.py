"""Unit tests for the Figure 1 table and the §2.5 selection algorithm."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decision import (
    FIGURE1_TABLE,
    DecisionInputs,
    DecisionThresholds,
    Rating,
    select_method,
)

BLOCK = 128 * 1024


def decide(sending_time, lz_speed, ratio, thresholds=DecisionThresholds()):
    return select_method(
        DecisionInputs(
            block_size=BLOCK,
            sending_time=sending_time,
            lz_reducing_speed=lz_speed,
            sampled_ratio=ratio,
        ),
        thresholds,
    )


class TestFigure1Table:
    def test_all_methods_rated_on_all_characteristics(self):
        methods = {"burrows-wheeler", "lempel-ziv", "arithmetic", "huffman"}
        for characteristic, by_method in FIGURE1_TABLE.items():
            assert set(by_method) == methods, characteristic

    def test_paper_cells(self):
        assert FIGURE1_TABLE["compression-time"]["huffman"] is Rating.EXCELLENT
        assert FIGURE1_TABLE["compression-time"]["burrows-wheeler"] is Rating.POOR
        assert FIGURE1_TABLE["string-repetitions"]["lempel-ziv"] is Rating.EXCELLENT
        assert FIGURE1_TABLE["low-entropy"]["lempel-ziv"] is Rating.POOR
        assert FIGURE1_TABLE["global-time"]["arithmetic"] is Rating.POOR
        assert FIGURE1_TABLE["decompression-time"]["burrows-wheeler"] is Rating.SATISFACTORY

    def test_burrows_wheeler_handles_both_characteristics(self):
        """§4.1: 'Burrows-Wheeler handles both of these cases.'"""
        assert FIGURE1_TABLE["string-repetitions"]["burrows-wheeler"] is Rating.EXCELLENT
        assert FIGURE1_TABLE["low-entropy"]["burrows-wheeler"] is Rating.EXCELLENT


class TestThresholds:
    def test_paper_defaults(self):
        t = DecisionThresholds()
        assert t.compress_factor == 0.83
        assert t.bw_factor == 3.48
        assert t.ratio_gate == 0.4878

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionThresholds(compress_factor=0)
        with pytest.raises(ValueError):
            DecisionThresholds(compress_factor=2.0, bw_factor=1.0)
        with pytest.raises(ValueError):
            DecisionThresholds(ratio_gate=0.0)
        with pytest.raises(ValueError):
            DecisionThresholds(ratio_gate=1.5)


class TestSelectMethod:
    def test_fast_link_no_compression(self):
        # 1 Gbit-class: sending is far cheaper than reducing.
        decision = decide(sending_time=0.005, lz_speed=1.4e6, ratio=0.35)
        assert decision.method == "none"
        assert not decision.compresses

    def test_moderate_load_picks_lempel_ziv(self):
        decision = decide(sending_time=0.13, lz_speed=1.4e6, ratio=0.35)
        assert decision.method == "lempel-ziv"

    def test_heavy_load_picks_burrows_wheeler(self):
        decision = decide(sending_time=0.5, lz_speed=1.4e6, ratio=0.35)
        assert decision.method == "burrows-wheeler"

    def test_unresponsive_sample_picks_huffman(self):
        decision = decide(sending_time=0.5, lz_speed=1.4e6, ratio=0.80)
        assert decision.method == "huffman"

    def test_ratio_gate_boundary(self):
        t = DecisionThresholds()
        just_below = decide(sending_time=0.5, lz_speed=1.4e6, ratio=t.ratio_gate - 1e-6)
        at_gate = decide(sending_time=0.5, lz_speed=1.4e6, ratio=t.ratio_gate)
        assert just_below.method == "burrows-wheeler"
        assert at_gate.method == "huffman"

    def test_first_block_infinite_speed_compresses(self):
        """Pseudocode line 1: infinite reducing speed => compression looks free."""
        decision = decide(sending_time=0.001, lz_speed=math.inf, ratio=None)
        assert decision.compresses
        assert decision.lz_reduce_time == 0.0

    def test_unsampled_block_defaults_to_cheap_method(self):
        decision = decide(sending_time=0.5, lz_speed=1.4e6, ratio=None)
        assert decision.method == "huffman"

    def test_zero_reducing_speed_disables_compression(self):
        """Incompressible data drives measured speed to ~0 => never compress."""
        decision = decide(sending_time=100.0, lz_speed=0.0, ratio=0.2)
        assert decision.method == "none"
        assert math.isinf(decision.lz_reduce_time)

    def test_compress_factor_boundary(self):
        lz_speed = 1.4e6
        reduce_time = BLOCK / lz_speed
        t = DecisionThresholds()
        below = decide(sending_time=t.compress_factor * reduce_time * 0.999, lz_speed=lz_speed, ratio=0.3)
        above = decide(sending_time=t.compress_factor * reduce_time * 1.001, lz_speed=lz_speed, ratio=0.3)
        assert below.method == "none"
        assert above.compresses

    def test_bw_factor_boundary(self):
        lz_speed = 1.4e6
        reduce_time = BLOCK / lz_speed
        t = DecisionThresholds()
        below = decide(sending_time=t.bw_factor * reduce_time * 0.999, lz_speed=lz_speed, ratio=0.3)
        above = decide(sending_time=t.bw_factor * reduce_time * 1.001, lz_speed=lz_speed, ratio=0.3)
        assert below.method == "lempel-ziv"
        assert above.method == "burrows-wheeler"

    def test_ratio_above_one_clamped(self):
        decision = decide(sending_time=0.5, lz_speed=1.4e6, ratio=1.5)
        assert decision.effective_ratio == 1.0

    def test_custom_thresholds_respected(self):
        eager = DecisionThresholds(compress_factor=0.01, bw_factor=0.02)
        decision = decide(sending_time=0.01, lz_speed=1.4e6, ratio=0.3, thresholds=eager)
        assert decision.method == "burrows-wheeler"

    def test_input_validation(self):
        with pytest.raises(ValueError):
            DecisionInputs(block_size=0, sending_time=1, lz_reducing_speed=1)
        with pytest.raises(ValueError):
            DecisionInputs(block_size=1, sending_time=-1, lz_reducing_speed=1)
        with pytest.raises(ValueError):
            DecisionInputs(block_size=1, sending_time=1, lz_reducing_speed=-1)
        with pytest.raises(ValueError):
            DecisionInputs(block_size=1, sending_time=1, lz_reducing_speed=1, sampled_ratio=-0.1)

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1e9),
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=2.0)),
    )
    @settings(max_examples=200)
    def test_always_returns_valid_method(self, sending_time, lz_speed, ratio):
        decision = decide(sending_time, lz_speed, ratio)
        assert decision.method in {"none", "huffman", "lempel-ziv", "burrows-wheeler"}

    def test_exact_compress_knee_boundary_does_not_compress(self):
        """Strict ``>`` at the 0.83 knee: equality means "don't compress".

        lz_speed == block size makes lz_reduce_time exactly 1.0, so
        sending_time == compress_factor hits the boundary with no float
        rounding in the product.
        """
        decision = decide(sending_time=0.83, lz_speed=float(BLOCK), ratio=0.2)
        assert decision.lz_reduce_time == 1.0
        assert decision.method == "none"
        assert decide(
            sending_time=math.nextafter(0.83, 1.0), lz_speed=float(BLOCK), ratio=0.2
        ).method == "lempel-ziv"

    def test_exact_bw_knee_boundary_stays_lempel_ziv(self):
        """Strict ``>`` at the 3.48 knee: equality stays on Lempel-Ziv."""
        decision = decide(sending_time=3.48, lz_speed=float(BLOCK), ratio=0.2)
        assert decision.method == "lempel-ziv"
        assert decide(
            sending_time=math.nextafter(3.48, 4.0), lz_speed=float(BLOCK), ratio=0.2
        ).method == "burrows-wheeler"

    def test_exact_ratio_gate_boundary_uses_huffman(self):
        """Strict ``<`` on the 48.78 % gate: equality is "did not respond"."""
        gate = DecisionThresholds().ratio_gate
        assert decide(sending_time=5.0, lz_speed=float(BLOCK), ratio=gate).method == (
            "huffman"
        )
        assert decide(
            sending_time=5.0, lz_speed=float(BLOCK), ratio=math.nextafter(gate, 0.0)
        ).method == "burrows-wheeler"

    @given(st.floats(min_value=1e3, max_value=1e8))
    @settings(max_examples=100)
    def test_monotone_in_sending_time(self, lz_speed):
        """Slower links never cause a *weaker* method to be chosen."""
        strength = {"none": 0, "huffman": 1, "lempel-ziv": 2, "burrows-wheeler": 3}
        ratio = 0.3
        previous = -1
        for sending_time in [0.001, 0.01, 0.05, 0.2, 1.0, 5.0, 50.0]:
            method = decide(sending_time, lz_speed, ratio).method
            # with ratio fixed below gate, escalation order: none->lz->bw
            assert strength[method] >= previous or method == "huffman"
            previous = strength[method]
