"""Unit tests for the break-even placement model and its policy hookup."""

import math

import pytest

from repro.core.bicriteria import FrontierPoint
from repro.core.monitor import ReducingSpeedMonitor
from repro.core.placement import (
    PLACEMENT_MODES,
    PLACEMENTS,
    choose_placement,
    evaluate_placements,
    raw_breakeven_seconds,
)
from repro.core.policy import AdaptivePolicy
from repro.core.sampler import SampleResult
from repro.core.workers import RelaySchedule, simulate_pipeline, simulate_relay_pipeline
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.obs.placement import (
    PLACEMENT_CHOICES_TOTAL,
    PLACEMENT_DEGRADED_TOTAL,
)

BLOCK = 128 * 1024


def _point(ratio=0.5, compress=1.0, decompress=0.5, method="lempel-ziv"):
    """A frontier point with exactly representable float phases."""
    return FrontierPoint(
        method=method,
        params=(),
        block_size=BLOCK,
        ratio=ratio,
        compress_seconds=compress,
        transfer_seconds=0.0,
        decompress_seconds=decompress,
    )


class TestEvaluatePlacements:
    def test_raw_always_available(self):
        costs = evaluate_placements(None, 2.0)
        assert set(costs) == {"raw"}
        assert costs["raw"].total_seconds == 2.0
        assert costs["raw"].method == "none"

    def test_producer_needs_a_priceable_point(self):
        costs = evaluate_placements(_point(), 2.0)
        assert set(costs) == {"raw", "producer"}
        # compress + (up * ratio) + decompress, no interference.
        assert costs["producer"].total_seconds == 1.0 + 2.0 * 0.5 + 0.5

    def test_consumer_needs_a_downstream_hop(self):
        without = evaluate_placements(_point(), 2.0)
        assert "consumer" not in without
        with_relay = evaluate_placements(_point(), 2.0, downstream_seconds=8.0)
        consumer = with_relay["consumer"]
        # Raw upstream, relay compresses, compressed downstream.
        assert consumer.compress_seconds == 0.0
        assert consumer.wire_seconds == 2.0 + 8.0 * 0.5
        assert consumer.relay_seconds == 1.0
        assert consumer.decompress_seconds == 0.5

    def test_interference_surcharges_only_the_producer(self):
        costs = evaluate_placements(
            _point(), 2.0, downstream_seconds=8.0, interference=0.5
        )
        assert costs["producer"].compress_seconds == 1.5
        assert costs["consumer"].relay_seconds == 1.0
        assert costs["raw"].total_seconds == 10.0

    def test_none_point_prices_like_no_point(self):
        costs = evaluate_placements(_point(method="none"), 2.0)
        assert set(costs) == {"raw"}

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_placements(_point(), -1.0)
        with pytest.raises(ValueError):
            evaluate_placements(_point(), 1.0, downstream_seconds=-1.0)
        with pytest.raises(ValueError):
            evaluate_placements(_point(), 1.0, interference=-0.1)
        with pytest.raises(ValueError):
            choose_placement({})


class TestBreakevenKnee:
    """The raw-vs-producer knee is an exact float boundary.

    With ratio=0.5, compress=1.0, decompress=0.5 and no interference the
    tie point solves exactly: raw = (1.0 + 0.5) / (1 - 0.5) = 3.0, with
    every operand representable, so nextafter steps must flip the choice.
    """

    def test_knee_value_is_exact(self):
        assert raw_breakeven_seconds(_point()) == 3.0

    def test_tie_prefers_producer(self):
        costs = evaluate_placements(_point(), 3.0)
        assert costs["raw"].total_seconds == costs["producer"].total_seconds
        assert choose_placement(costs).placement == "producer"

    def test_nextafter_below_knee_ships_raw(self):
        below = math.nextafter(3.0, 0.0)
        assert choose_placement(evaluate_placements(_point(), below)).placement == "raw"

    def test_nextafter_above_knee_compresses(self):
        above = math.nextafter(3.0, math.inf)
        chosen = choose_placement(evaluate_placements(_point(), above))
        assert chosen.placement == "producer"

    def test_interference_moves_the_knee(self):
        # With a 100% surcharge the knee doubles the compress term:
        # (1.0 * 2 + 0.5) / 0.5 = 5.0 — again exact.
        assert raw_breakeven_seconds(_point(), interference=1.0) == 5.0
        assert (
            choose_placement(
                evaluate_placements(_point(), 4.0, interference=1.0)
            ).placement
            == "raw"
        )

    def test_expanding_point_never_breaks_even(self):
        assert raw_breakeven_seconds(_point(ratio=1.0)) == math.inf
        assert raw_breakeven_seconds(_point(ratio=1.25)) == math.inf

    def test_interference_validation(self):
        with pytest.raises(ValueError):
            raw_breakeven_seconds(_point(), interference=-0.01)


class TestPolicyPlacement:
    def _monitor(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        return monitor

    def _policy(self, **kwargs):
        kwargs.setdefault("cost_model", DEFAULT_COSTS)
        kwargs.setdefault("cpu", SUN_FIRE)
        return AdaptivePolicy(**kwargs)

    def test_modes_exported(self):
        assert PLACEMENTS == ("producer", "raw", "consumer")
        assert set(PLACEMENT_MODES) == {"auto", *PLACEMENTS}

    def test_default_placement_untouched(self):
        """placement='producer' must not change the paper's decisions."""
        monitor = self._monitor()
        sample = SampleResult(4096, 1400, 0.001)
        baseline = AdaptivePolicy().choose(BLOCK, 0.5, self._monitor(), sample)
        decision = self._policy().choose(BLOCK, 0.5, monitor, sample)
        assert decision.method == baseline.method
        assert decision.placement == "producer"
        assert decision.relay_method == "none"

    def test_auto_ships_raw_on_fast_link(self):
        policy = self._policy(placement="auto")
        sample = SampleResult(4096, 1400, 0.001)
        decision = policy.choose(BLOCK, 0.01, self._monitor(), sample)
        assert decision.placement == "raw"
        assert decision.method == "none"
        assert not decision.offloaded
        assert policy.placement_counts == {"raw": 1}

    def test_auto_compresses_on_slow_link(self):
        policy = self._policy(placement="auto")
        sample = SampleResult(4096, 1400, 0.001)
        decision = policy.choose(BLOCK, 5.0, self._monitor(), sample)
        assert decision.placement == "producer"
        assert decision.compresses

    def test_consumer_offload_carries_relay_method(self):
        policy = self._policy(placement="consumer", downstream_factor=4.0)
        sample = SampleResult(4096, 1400, 0.001)
        decision = policy.choose(BLOCK, 5.0, self._monitor(), sample)
        assert decision.placement == "consumer"
        assert decision.method == "none"  # producer sends raw
        assert decision.relay_method != "none"
        assert decision.offloaded

    def test_accumulator_pair_auto_never_loses(self):
        policy = self._policy(placement="auto", interference=0.15)
        sample = SampleResult(4096, 1400, 0.001)
        for sending_time in (0.01, 0.1, 0.5, 2.0, 5.0):
            policy.choose(BLOCK, sending_time, self._monitor(), sample)
        assert policy.placement_modeled_seconds_total <= (
            policy.producer_placement_seconds_total * (1.0 + 1e-9)
        )
        assert sum(policy.placement_counts.values()) == 5

    def test_placement_metrics_recorded(self):
        policy = self._policy(placement="auto")
        monitor = self._monitor()
        policy.choose(BLOCK, 0.01, monitor, SampleResult(4096, 1400, 0.001))
        counter = monitor.registry.counter(PLACEMENT_CHOICES_TOTAL)
        assert counter.value(placement="raw", method="none", params="-") == 1

    def test_staleness_degrades_to_producer(self):
        policy = self._policy(placement="auto", staleness_horizon=1)
        monitor = self._monitor()
        sample = SampleResult(4096, 1400, 0.001)
        decisions = [policy.choose(BLOCK, 0.01, monitor, sample) for _ in range(4)]
        degraded = decisions[-1]
        assert degraded.degraded
        assert degraded.method == "none"
        assert degraded.placement == "producer"  # the Decision default
        assert monitor.registry.counter(PLACEMENT_DEGRADED_TOTAL).value() >= 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            self._policy(placement="edge")
        with pytest.raises(ValueError):
            self._policy(placement="auto", interference=-0.1)
        with pytest.raises(ValueError):
            self._policy(placement="auto", downstream_factor=0.0)
        with pytest.raises(ValueError):
            self._policy(placement="consumer")  # no downstream_factor

    def test_bicriteria_dialect_takes_placement(self):
        policy = self._policy(policy="bicriteria", placement="auto")
        sample = SampleResult(4096, 1400, 0.001)
        decision = policy.choose(BLOCK, 0.01, self._monitor(), sample)
        assert decision.placement == "raw"


class TestRelayPipeline:
    def test_degenerates_to_simulate_pipeline(self):
        compress = [0.4, 0.3, 0.5, 0.2]
        sends = [0.1, 0.6, 0.2, 0.3]
        zero = [0.0] * 4
        plain = simulate_pipeline(compress, sends, workers=2, queue_depth=2)
        relay = simulate_relay_pipeline(
            compress, sends, zero, zero, zero, workers=2, queue_depth=2
        )
        assert isinstance(relay, RelaySchedule)
        assert relay.makespan == pytest.approx(plain.makespan)
        assert relay.serial_seconds == pytest.approx(plain.serial_seconds)

    def test_relay_stage_serializes_in_order(self):
        schedule = simulate_relay_pipeline(
            [0.0, 0.0], [0.1, 0.1], [1.0, 0.1], [0.1, 0.1], [0.0, 0.0]
        )
        # In-order forwarding: block 1 reaches the downstream wire only
        # after block 0's relay run (done at 1.1) — so 0.1 up + waiting
        # on block 0's slow relay + 0.1 relay + back-to-back downstream
        # sends land the last block at 1.3, not the 0.4 a free-for-all
        # relay would allow.
        assert schedule.makespan == pytest.approx(1.3)

    def test_makespan_bounded_by_serial(self):
        schedule = simulate_relay_pipeline(
            [0.4, 0.3], [0.2, 0.2], [0.1, 0.1], [0.3, 0.3], [0.2, 0.2],
            workers=2, relay_workers=2,
        )
        assert schedule.makespan <= schedule.serial_seconds
        assert schedule.serial_seconds == pytest.approx(2.3)
        assert schedule.speedup >= 1.0
        assert 0.0 <= schedule.overlap_fraction < 1.0
        assert schedule.wire_seconds == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_relay_pipeline([0.1], [0.1, 0.2], [0.1], [0.1], [0.1])
        with pytest.raises(ValueError):
            simulate_relay_pipeline([0.1], [0.1], [0.1], [0.1], [0.1], workers=0)
        with pytest.raises(ValueError):
            simulate_relay_pipeline([0.1], [0.1], [0.1], [0.1], [0.1], queue_depth=0)
        assert simulate_relay_pipeline([], [], [], [], []).makespan == 0.0
