"""Unit tests for the reducing-speed monitor."""

import math

import pytest

from repro.compression.base import CompressionResult
from repro.core.monitor import ReducingSpeedMonitor


def result(name, original, compressed, seconds):
    return CompressionResult(name, original, compressed, seconds)


class TestReducingSpeedMonitor:
    def test_unobserved_codec_is_infinite(self):
        """'Assume the reducing size speed of first block is infinity.'"""
        monitor = ReducingSpeedMonitor()
        assert math.isinf(monitor.reducing_speed("lempel-ziv"))
        assert not monitor.observed("lempel-ziv")

    def test_first_observation_replaces_infinity(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe(result("lz", 1000, 400, 0.1))
        assert monitor.reducing_speed("lz") == pytest.approx(6000.0)
        assert monitor.observed("lz")

    def test_ewma_smoothing(self):
        monitor = ReducingSpeedMonitor(alpha=0.5)
        monitor.observe(result("lz", 1000, 0, 1.0))    # 1000 B/s
        monitor.observe(result("lz", 2000, 0, 1.0))    # 2000 B/s
        assert monitor.reducing_speed("lz") == pytest.approx(1500.0)

    def test_ratio_tracked(self):
        monitor = ReducingSpeedMonitor(alpha=1.0)
        monitor.observe(result("lz", 1000, 420, 0.1))
        assert monitor.ratio("lz") == pytest.approx(0.42)

    def test_ratio_none_when_unobserved(self):
        assert ReducingSpeedMonitor().ratio("lz") is None

    def test_zero_duration_observation_ignored(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe(result("lz", 1000, 400, 0.0))
        assert math.isinf(monitor.reducing_speed("lz"))

    def test_observe_raw(self):
        monitor = ReducingSpeedMonitor(alpha=1.0)
        monitor.observe_raw("lz", 500, 0.5)
        assert monitor.reducing_speed("lz") == pytest.approx(1000.0)

    def test_observe_raw_ignores_invalid(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lz", 100, 0.0)
        monitor.observe_raw("lz", -5, 1.0)
        assert math.isinf(monitor.reducing_speed("lz"))

    def test_observe_raw_does_not_touch_ratio(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lz", 500, 0.5)
        assert monitor.ratio("lz") is None

    def test_observe_speed(self):
        monitor = ReducingSpeedMonitor(alpha=0.5)
        monitor.observe_speed("lz", 100.0)
        monitor.observe_speed("lz", 300.0)
        assert monitor.reducing_speed("lz") == pytest.approx(200.0)

    def test_observe_speed_rejects_nonsense(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe_speed("lz", math.inf)
        monitor.observe_speed("lz", math.nan)
        monitor.observe_speed("lz", -1.0)
        assert math.isinf(monitor.reducing_speed("lz"))

    def test_codecs_tracked_independently(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lz", 100, 1.0)
        assert math.isinf(monitor.reducing_speed("bw"))

    def test_cpu_load_change_visible_quickly(self):
        """A CPU slowdown halves speeds; the EWMA must track within a few blocks."""
        monitor = ReducingSpeedMonitor(alpha=0.5)
        for _ in range(5):
            monitor.observe_raw("lz", 1000, 1.0)
        for _ in range(4):
            monitor.observe_raw("lz", 500, 1.0)
        assert monitor.reducing_speed("lz") < 600

    def test_reset(self):
        monitor = ReducingSpeedMonitor()
        monitor.observe(result("lz", 100, 50, 0.1))
        monitor.reset()
        assert math.isinf(monitor.reducing_speed("lz"))
        assert monitor.ratio("lz") is None

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            ReducingSpeedMonitor(alpha=0.0)
