"""Property-based tests on pipeline invariants.

Whatever the block stream, link, load, or pacing, certain things must
always hold: every non-empty block yields exactly one record, time is
monotone, compressed payloads round-trip, and the accounting identities
connect records to aggregates.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import AdaptivePipeline
from repro.data.commercial import CommercialDataGenerator
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS, SimulatedLink
from repro.netsim.loadtrace import LoadTrace
from tests.strategies import link_names

_GENERATOR = CommercialDataGenerator(seed=1717)
_POOL = list(_GENERATOR.stream(16 * 1024, 24))


def _pipeline():
    return AdaptivePipeline(
        block_size=16 * 1024, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE
    )


@st.composite
def scenarios(draw):
    block_count = draw(st.integers(min_value=0, max_value=10))
    blocks = [_POOL[i % len(_POOL)] for i in range(block_count)]
    link_name = draw(link_names())
    connections = draw(st.floats(min_value=0.0, max_value=80.0))
    interval = draw(st.sampled_from([0.0, 0.5, 2.0]))
    pipelined = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=1000))
    return blocks, link_name, connections, interval, pipelined, seed


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_pipeline_invariants(scenario):
    blocks, link_name, connections, interval, pipelined, seed = scenario
    link = SimulatedLink(PAPER_LINKS[link_name], seed=seed, congestion_per_connection=0.4)
    load = LoadTrace.from_pairs([(0.0, connections)])
    result = _pipeline().run(
        blocks,
        link,
        load=load,
        production_interval=interval,
        pipelined=pipelined,
    )

    # one record per non-empty block, in order
    assert len(result.records) == len([b for b in blocks if b])
    assert [r.index for r in result.records] == list(range(len(result.records)))

    # time is monotone and total covers every record
    starts = [r.start_time for r in result.records]
    assert starts == sorted(starts)
    for record in result.records:
        assert record.send_start_time >= record.start_time
        assert result.total_time >= record.send_start_time

    # accounting identities
    assert result.total_original_bytes == sum(r.original_size for r in result.records)
    assert result.total_compressed_bytes == sum(
        r.compressed_size for r in result.records
    )
    assert sum(result.method_counts().values()) == len(result.records)
    assert 0.0 <= result.compression_time_fraction <= 1.0

    # every chosen method is a paper method with a sane payload
    for record in result.records:
        assert record.method in {"none", "huffman", "lempel-ziv", "burrows-wheeler"}
        if record.method == "none":
            assert record.compressed_size == record.original_size
            assert record.compression_time == 0.0
        else:
            assert record.compression_time > 0.0


@given(st.integers(min_value=0, max_value=999))
@settings(max_examples=15, deadline=None)
def test_pipeline_deterministic_given_seed(seed):
    blocks = _POOL[:6]
    def run():
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=seed)
        return _pipeline().run(blocks, link)
    a, b = run(), run()
    assert [r.method for r in a.records] == [r.method for r in b.records]
    assert a.total_time == b.total_time


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_verify_mode_roundtrips_random_streams(data):
    rng = random.Random(data.draw(st.integers(0, 500)))
    blocks = [
        bytes(rng.getrandbits(8) for _ in range(rng.randrange(1024, 4096)))
        for _ in range(3)
    ]
    pipeline = AdaptivePipeline(
        block_size=1024,
        cost_model=DEFAULT_COSTS,
        cpu=SUN_FIRE,
        verify=True,
    )
    link = SimulatedLink(PAPER_LINKS["1mbit"], seed=1)
    result = pipeline.run(blocks, link)
    assert len(result.records) == 3
