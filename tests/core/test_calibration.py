"""Unit tests for the §2.5 threshold-calibration procedure."""

import pytest

from repro.core.calibration import (
    GATE_HEADROOM,
    OperatingPoint,
    calibrate_thresholds,
)
from repro.data.commercial import CommercialDataGenerator

_MB = 1 << 20

#: The paper's own operating points (Figure 2 ratios, Figure 3/4 speeds).
PAPER_LZ = OperatingPoint(throughput=2.2 * _MB, ratio=0.41)
PAPER_BW = OperatingPoint(throughput=0.95 * _MB, ratio=0.34)


@pytest.fixture(scope="module")
def sample():
    return CommercialDataGenerator(seed=4).xml_block(48 * 1024)


class TestOperatingPoint:
    def test_reducing_speed(self):
        point = OperatingPoint(throughput=1000.0, ratio=0.4)
        assert point.reducing_speed == pytest.approx(600.0)

    def test_incompressible_zero_reducing_speed(self):
        assert OperatingPoint(throughput=1000.0, ratio=1.0).reducing_speed == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(throughput=0.0, ratio=0.5)
        with pytest.raises(ValueError):
            OperatingPoint(throughput=1.0, ratio=-0.1)


class TestCalibrateThresholds:
    def test_reproduces_paper_constants_from_paper_stats(self, sample):
        """Applied to the paper's own Figure 2/4 numbers, the procedure
        recovers the paper's 0.83 / 3.48 / 0.4878 within a few percent —
        strong evidence this is how those constants were set."""
        calibration = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW)
        thresholds = calibration.thresholds
        assert thresholds.compress_factor == pytest.approx(0.83, abs=0.001)
        assert thresholds.bw_factor == pytest.approx(3.48, rel=0.05)
        assert thresholds.ratio_gate == pytest.approx(0.4878, rel=0.01)

    def test_gate_headroom_matches_paper_derivation(self):
        assert GATE_HEADROOM * 0.41 == pytest.approx(0.4878, abs=0.001)

    def test_host_measured_thresholds_are_usable(self, sample):
        thresholds = calibrate_thresholds(sample).thresholds
        assert 0.5 < thresholds.compress_factor < 1.0
        assert thresholds.bw_factor >= thresholds.compress_factor
        assert 0.2 < thresholds.ratio_gate <= 0.95

    def test_margin_controls_eagerness(self, sample):
        eager = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW, margin=0.4)
        lazy = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW, margin=0.0)
        assert eager.thresholds.compress_factor < lazy.thresholds.compress_factor
        assert lazy.thresholds.compress_factor == 1.0

    def test_slower_bw_raises_bw_factor(self, sample):
        slow_bw = OperatingPoint(throughput=0.4 * _MB, ratio=0.34)
        calibration = calibrate_thresholds(sample, lz=PAPER_LZ, bw=slow_bw)
        baseline = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW)
        assert calibration.thresholds.bw_factor > baseline.thresholds.bw_factor

    def test_gate_capped(self, sample):
        poor_lz = OperatingPoint(throughput=2.2 * _MB, ratio=0.9)
        calibration = calibrate_thresholds(sample, lz=poor_lz, bw=PAPER_BW)
        assert calibration.thresholds.ratio_gate <= 0.95

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            calibrate_thresholds(b"")

    def test_invalid_margin_rejected(self, sample):
        with pytest.raises(ValueError):
            calibrate_thresholds(sample, margin=1.0)

    def test_incompressible_points_rejected(self, sample):
        flat = OperatingPoint(throughput=1e6, ratio=1.0)
        with pytest.raises(ValueError):
            calibrate_thresholds(sample, lz=flat, bw=flat)

    def test_calibrated_thresholds_drive_a_sane_run(self, sample):
        """End to end: thresholds calibrated from the stream's own head
        produce a reasonable adaptive run."""
        from repro.core.pipeline import AdaptivePipeline
        from repro.core.policy import AdaptivePolicy
        from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
        from repro.netsim.link import make_link

        calibration = calibrate_thresholds(sample, lz=PAPER_LZ, bw=PAPER_BW)
        pipeline = AdaptivePipeline(
            policy=AdaptivePolicy(calibration.thresholds),
            block_size=32 * 1024,
            cost_model=DEFAULT_COSTS,
            cpu=SUN_FIRE,
        )
        blocks = list(CommercialDataGenerator(seed=9).stream(32 * 1024, 10))
        result = pipeline.run(blocks, make_link("1mbit", seed=2))
        assert result.overall_ratio < 0.7  # it does compress on a slow link
