"""Unit tests for compression policies."""

import math

import pytest

from repro.compression.base import CodecError
from repro.core.monitor import ReducingSpeedMonitor
from repro.core.policy import AdaptivePolicy, FixedPolicy
from repro.core.sampler import SampleResult


class TestFixedPolicy:
    def test_always_returns_its_method(self):
        policy = FixedPolicy("huffman")
        monitor = ReducingSpeedMonitor()
        for sending_time in (0.0001, 1.0, 100.0):
            decision = policy.choose(128 * 1024, sending_time, monitor, None)
            assert decision.method == "huffman"

    def test_unknown_method_rejected_eagerly(self):
        with pytest.raises(CodecError):
            FixedPolicy("zstd")

    def test_none_policy(self):
        decision = FixedPolicy("none").choose(1024, 1.0, ReducingSpeedMonitor(), None)
        assert not decision.compresses


class TestAdaptivePolicy:
    def test_uses_monitor_speed(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)  # 1.4 MB/s
        sample = SampleResult(4096, 1400, 0.001)  # ratio ~0.34
        fast_link = policy.choose(128 * 1024, 0.01, monitor, sample)
        slow_link = policy.choose(128 * 1024, 0.5, monitor, sample)
        assert fast_link.method == "none"
        assert slow_link.method == "burrows-wheeler"

    def test_first_block_without_sample(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()  # infinite speed
        decision = policy.choose(128 * 1024, 0.01, monitor, None)
        assert decision.compresses  # infinity => compression looks free

    def test_sample_ratio_gates_dictionary_methods(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        poor_sample = SampleResult(4096, 3900, 0.001)  # ratio ~0.95
        decision = policy.choose(128 * 1024, 0.5, monitor, poor_sample)
        assert decision.method == "huffman"


class TestStalenessDegradation:
    def choose(self, policy, monitor):
        return policy.choose(128 * 1024, 0.5, monitor, None)

    def test_degrades_past_horizon_without_fresh_observations(self):
        policy = AdaptivePolicy(staleness_horizon=3)
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        decisions = [self.choose(policy, monitor) for _ in range(6)]
        # Decision 1 sees a fresh count; 2-4 are within the horizon;
        # 5 and 6 are past it and must fall back.
        assert [d.degraded for d in decisions] == [False] * 4 + [True] * 2
        assert decisions[-1].method == "none"
        assert not decisions[-1].compresses
        assert policy.degraded_decisions == 2

    def test_fresh_observation_clears_degradation(self):
        policy = AdaptivePolicy(staleness_horizon=1)
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        self.choose(policy, monitor)  # fresh
        self.choose(policy, monitor)  # stale 1 (at horizon, still trusted)
        assert self.choose(policy, monitor).degraded  # stale 2: degraded
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)  # feedback resumes
        recovered = self.choose(policy, monitor)
        assert not recovered.degraded
        assert recovered.compresses

    def test_degraded_metric_emitted_on_monitor_registry(self):
        policy = AdaptivePolicy(staleness_horizon=1)
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        for _ in range(4):
            self.choose(policy, monitor)
        assert (
            monitor.registry.counter("repro_selector_degraded_total").value() == 2
        )

    def test_disabled_by_default(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        decisions = [self.choose(policy, monitor) for _ in range(50)]
        assert not any(d.degraded for d in decisions)

    def test_horizon_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(staleness_horizon=0)
