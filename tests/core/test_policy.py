"""Unit tests for compression policies."""

import math

import pytest

from repro.compression.base import CodecError
from repro.core.monitor import ReducingSpeedMonitor
from repro.core.policy import AdaptivePolicy, FixedPolicy
from repro.core.sampler import SampleResult


class TestFixedPolicy:
    def test_always_returns_its_method(self):
        policy = FixedPolicy("huffman")
        monitor = ReducingSpeedMonitor()
        for sending_time in (0.0001, 1.0, 100.0):
            decision = policy.choose(128 * 1024, sending_time, monitor, None)
            assert decision.method == "huffman"

    def test_unknown_method_rejected_eagerly(self):
        with pytest.raises(CodecError):
            FixedPolicy("zstd")

    def test_none_policy(self):
        decision = FixedPolicy("none").choose(1024, 1.0, ReducingSpeedMonitor(), None)
        assert not decision.compresses


class TestAdaptivePolicy:
    def test_uses_monitor_speed(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)  # 1.4 MB/s
        sample = SampleResult(4096, 1400, 0.001)  # ratio ~0.34
        fast_link = policy.choose(128 * 1024, 0.01, monitor, sample)
        slow_link = policy.choose(128 * 1024, 0.5, monitor, sample)
        assert fast_link.method == "none"
        assert slow_link.method == "burrows-wheeler"

    def test_first_block_without_sample(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()  # infinite speed
        decision = policy.choose(128 * 1024, 0.01, monitor, None)
        assert decision.compresses  # infinity => compression looks free

    def test_sample_ratio_gates_dictionary_methods(self):
        policy = AdaptivePolicy()
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 140_000, 0.1)
        poor_sample = SampleResult(4096, 3900, 0.001)  # ratio ~0.95
        decision = policy.choose(128 * 1024, 0.5, monitor, poor_sample)
        assert decision.method == "huffman"
