"""Unit tests for the bicriteria optimizer and its policy integration."""

import math
import zlib

import pytest

from repro.compression.lz77 import Lz77Codec
from repro.core.bicriteria import (
    CandidateSpec,
    FrontierPoint,
    build_frontier,
    codec_for,
    default_candidates,
    evaluate_candidates,
    pareto_frontier,
    select_point,
)
from repro.core.decision import DecisionInputs, select_method
from repro.core.monitor import ReducingSpeedMonitor
from repro.core.pipeline import AdaptivePipeline
from repro.core.policy import AdaptivePolicy
from repro.experiments.config import ReplayConfig
from repro.experiments.replay import commercial_blocks, make_policy, run_replay
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE, CodecCostModel
from repro.netsim.link import make_link
from repro.obs.bicriteria import (
    BUDGET_VIOLATIONS_TOTAL,
    CHOICES_TOTAL,
    FRONTIER_SIZE_GAUGE,
)

BLOCK = 128 * 1024


def frontier(sending_time=0.5, sample=None, monitor=None, candidates=None):
    return build_frontier(
        BLOCK,
        sending_time,
        calibration=DEFAULT_COSTS,
        cpu=SUN_FIRE,
        monitor=monitor,
        sample=sample,
        candidates=candidates,
    )


class TestFrontier:
    def test_none_is_always_priceable(self):
        points = evaluate_candidates([CandidateSpec(method="none")], 1.0)
        (point,) = points.values()
        assert point.method == "none"
        assert point.ratio == 1.0
        assert point.compress_seconds == 0.0
        assert point.transfer_seconds == pytest.approx(1.0)

    def test_unknown_methods_are_skipped_not_priced(self):
        points = evaluate_candidates(
            [CandidateSpec(method="none"), CandidateSpec(method="mystery")],
            1.0,
            calibration=DEFAULT_COSTS,
        )
        assert [spec.method for spec in points] == ["none"]

    def test_frontier_is_pareto_optimal(self):
        result = frontier(sending_time=0.5, sample=0.35)
        assert result
        for a in result:
            for b in result:
                if a is not b:
                    assert not a.dominates(b)

    def test_frontier_sorted_fastest_first_space_decreasing(self):
        result = frontier(sending_time=0.5, sample=0.35)
        times = [p.seconds_per_byte for p in result]
        spaces = [p.space for p in result]
        assert times == sorted(times)
        assert spaces == sorted(spaces, reverse=True)

    def test_empty_calibration_degenerates_to_none(self):
        result = build_frontier(BLOCK, 0.5, calibration=CodecCostModel({}))
        assert [p.method for p in result] == ["none"]

    def test_param_variant_trades_time_for_space(self):
        fast_spec = CandidateSpec.make(
            "lempel-ziv", {"window": 4096, "max_chain": 4}, block_size=BLOCK
        )
        default_spec = CandidateSpec(method="lempel-ziv", block_size=BLOCK)
        points = evaluate_candidates(
            [fast_spec, default_spec], 0.5, calibration=DEFAULT_COSTS, cpu=SUN_FIRE
        )
        fast, default = points[fast_spec], points[default_spec]
        assert fast.compress_seconds < default.compress_seconds
        assert fast.ratio > default.ratio

    def test_monitor_speed_steers_compress_time(self):
        slow, fast = ReducingSpeedMonitor(), ReducingSpeedMonitor()
        slow.observe_speed("lempel-ziv", 1e5)
        fast.observe_speed("lempel-ziv", 1e7)
        spec = CandidateSpec(method="lempel-ziv", block_size=BLOCK)
        slow_point = evaluate_candidates(
            [spec], 0.5, calibration=DEFAULT_COSTS, monitor=slow
        )[spec]
        fast_point = evaluate_candidates(
            [spec], 0.5, calibration=DEFAULT_COSTS, monitor=fast
        )[spec]
        assert fast_point.compress_seconds < slow_point.compress_seconds


class TestSelectPoint:
    def test_budget_one_never_violates(self):
        point, violated = select_point(frontier(sample=0.35), space_budget=1.0)
        assert not violated
        assert point.space <= 1.0 + 1e-9

    def test_tight_budget_excludes_none(self):
        point, violated = select_point(frontier(sample=0.2), space_budget=0.5)
        assert not violated
        assert point.method != "none"
        assert point.space <= 0.5 + 1e-9

    def test_impossible_budget_flags_violation_with_minimal_space(self):
        result = frontier(sample=0.35)
        point, violated = select_point(result, space_budget=1e-6)
        assert violated
        assert point.space == min(p.space for p in result)

    def test_validation(self):
        with pytest.raises(ValueError):
            select_point([], space_budget=1.0)
        with pytest.raises(ValueError):
            select_point(frontier(), space_budget=0.0)


class TestCodecFor:
    def test_default_params_resolve_registry_instance(self):
        from repro.compression.registry import get_codec

        assert codec_for("lempel-ziv") is get_codec("lempel-ziv")

    def test_param_instances_are_memoized(self):
        params = (("max_chain", 4), ("window", 4096))
        assert codec_for("lempel-ziv", params) is codec_for("lempel-ziv", params)

    def test_wire_identity_with_direct_construction(self):
        data = bytes(range(256)) * 64
        params = (("max_chain", 4), ("window", 4096))
        via_resolver = codec_for("lempel-ziv", params).compress(data)
        direct = Lz77Codec(window=4096, max_chain=4).compress(data)
        assert via_resolver == direct
        assert Lz77Codec().decompress(via_resolver) == data


class TestAdaptivePolicyBicriteria:
    def choose_once(self, policy, sending_time=0.5, monitor=None, sample=None):
        monitor = monitor if monitor is not None else ReducingSpeedMonitor()
        return policy.choose(BLOCK, sending_time, monitor, sample), monitor

    def make(self, **kwargs):
        kwargs.setdefault("policy", "bicriteria")
        kwargs.setdefault("cost_model", DEFAULT_COSTS)
        kwargs.setdefault("cpu", SUN_FIRE)
        return AdaptivePolicy(**kwargs)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(policy="psychic")
        with pytest.raises(ValueError):
            AdaptivePolicy(policy="bicriteria", space_budget=0.0)

    def test_decision_carries_frontier_and_models(self):
        policy = self.make()
        decision, _ = self.choose_once(policy)
        assert decision.frontier_size >= 1
        assert decision.modeled_seconds > 0
        assert not decision.budget_violated
        assert decision.method in {"none", "huffman", "lempel-ziv", "burrows-wheeler"}

    def test_never_models_slower_than_table(self):
        policy = self.make()
        for sending_time in (0.01, 0.1, 0.5, 2.0, 10.0):
            decision, _ = self.choose_once(policy, sending_time=sending_time)
            assert (
                decision.modeled_seconds
                <= decision.table_modeled_seconds + 1e-9
            )
        assert policy.modeled_seconds_total <= policy.table_modeled_seconds_total + 1e-9
        assert policy.choices == 5

    def test_metrics_land_in_monitor_registry(self):
        policy = self.make(space_budget=1e-6)
        decision, monitor = self.choose_once(policy, sample=0.3)
        assert decision.budget_violated
        assert policy.budget_violations == 1
        registry = monitor.registry
        assert registry.gauge(FRONTIER_SIZE_GAUGE).value() == decision.frontier_size
        assert registry.counter(BUDGET_VIOLATIONS_TOTAL).value() == 1
        from repro.compression.base import params_label

        label = params_label(decision.params)
        assert (
            registry.counter(CHOICES_TOTAL).value(
                method=decision.method, params=label
            )
            == 1
        )

    def test_degenerate_frontier_agrees_with_table(self):
        """Empty calibration -> lone 'none' point; the table with a dead
        (zero) reducing speed also refuses to compress."""
        policy = self.make(cost_model=CodecCostModel({}), cpu=None)
        monitor = ReducingSpeedMonitor()
        monitor.observe_speed("lempel-ziv", 0.0)
        decision = policy.choose(BLOCK, 0.5, monitor, None)
        assert decision.frontier_size == 1
        assert decision.method == "none"
        table = select_method(
            DecisionInputs(
                block_size=BLOCK,
                sending_time=0.5,
                lz_reducing_speed=0.0,
                sampled_ratio=None,
            )
        )
        assert table.method == decision.method
        assert decision.modeled_seconds == decision.table_modeled_seconds

    def test_staleness_degradation_still_guards_bicriteria(self):
        policy = self.make(staleness_horizon=1)
        monitor = ReducingSpeedMonitor()
        monitor.observe_raw("lempel-ziv", 4096, 0.01)
        decisions = [policy.choose(BLOCK, 0.5, monitor, None) for _ in range(4)]
        assert any(d.degraded for d in decisions)
        degraded = [d for d in decisions if d.degraded]
        assert all(d.method == "none" for d in degraded)
        assert policy.degraded_decisions == len(degraded)

    def test_table_mode_ignores_bicriteria_fields(self):
        policy = AdaptivePolicy()
        decision, _ = self.choose_once(policy)
        assert policy.policy == "table"
        assert decision.params == ()
        assert decision.frontier_size == 0
        assert math.isnan(decision.modeled_seconds)


class TestPipelineIntegration:
    def run_small(self, policy=None, link_name="1mbit"):
        blocks = commercial_blocks(ReplayConfig(block_count=6))
        pipeline = AdaptivePipeline(
            policy=policy, cost_model=DEFAULT_COSTS, cpu=SUN_FIRE
        )
        link = make_link(link_name, seed=2)
        return blocks, pipeline.run(blocks, link, production_interval=2.5)

    def test_records_carry_params_and_wire_crc(self):
        policy = AdaptivePolicy(
            policy="bicriteria", cost_model=DEFAULT_COSTS, cpu=SUN_FIRE
        )
        blocks, result = self.run_small(policy=policy)
        assert len(result.records) == len(blocks)
        for block, record in zip(blocks, result.records):
            wire = (
                block
                if record.method == "none"
                else codec_for(record.method, record.params).compress(block)
            )
            assert zlib.crc32(wire) & 0xFFFFFFFF == record.payload_crc32

    def test_table_policy_records_empty_params(self):
        _, result = self.run_small()
        assert all(r.params == () for r in result.records)
        assert all(r.payload_crc32 != 0 for r in result.records)


class TestReplayPlumbing:
    def test_make_policy_dispatch(self):
        table = make_policy(ReplayConfig())
        assert isinstance(table, AdaptivePolicy) and table.policy == "table"
        bicriteria = make_policy(
            ReplayConfig(policy="bicriteria", space_budget=0.6)
        )
        assert bicriteria.policy == "bicriteria"
        assert bicriteria.space_budget == 0.6
        assert bicriteria.cost_model is DEFAULT_COSTS

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy(ReplayConfig(policy="psychic"))

    def test_unknown_link_raises_value_error(self):
        config = ReplayConfig(link="wormhole", block_count=2)
        with pytest.raises(ValueError, match="unknown link"):
            run_replay(commercial_blocks(config), config)

    def test_replay_config_runs_bicriteria_end_to_end(self):
        config = ReplayConfig(block_count=6, policy="bicriteria")
        result = run_replay(commercial_blocks(config), config)
        assert len(result.records) == 6

    def test_dominance_sorted_points_survive_dataclass_round_trip(self):
        point = FrontierPoint(
            method="huffman",
            params=(),
            block_size=BLOCK,
            ratio=0.47,
            compress_seconds=0.01,
            transfer_seconds=0.02,
            decompress_seconds=0.005,
        )
        assert point.total_seconds == pytest.approx(0.035)
        assert point.seconds_per_byte == pytest.approx(0.035 / BLOCK)
        assert point.space == 0.47

    def test_default_candidates_cover_param_variants(self):
        specs = default_candidates(BLOCK)
        methods = {s.method for s in specs}
        assert {"none", "huffman", "lempel-ziv", "burrows-wheeler"} <= methods
        assert any(s.params for s in specs)
        sized = default_candidates(BLOCK, block_sizes=(BLOCK // 2, BLOCK))
        assert {s.block_size for s in sized} == {BLOCK // 2, BLOCK}
