"""Refactor-equivalence: the engine-backed pipeline must replay the seed.

``golden_replay.json`` was captured from the pre-engine code (the seed's
``AdaptivePipeline`` with inline ``_compress``/``_decompression_time``)
running the deterministic Figure 8 and Figure 11 replays.  The modeled
cost mode makes those replays bit-exact, so after routing the pipeline
through :class:`repro.core.engine.CodecExecutor` the method sequence,
block sizes and modeled times must match the snapshot *exactly* — any
drift means the refactor changed behaviour, not just structure.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.replay import (
    figure8_commercial_replay,
    figure11_molecular_replay,
)

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_replay.json").read_text()
)


def _series(result):
    return {
        "methods": [record.method for record in result.records],
        "compressed_sizes": [record.compressed_size for record in result.records],
        "original_sizes": [record.original_size for record in result.records],
        "compression_times": [record.compression_time for record in result.records],
    }


@pytest.mark.parametrize(
    "name, replay",
    [
        ("figure8", figure8_commercial_replay),
        ("figure11", figure11_molecular_replay),
    ],
)
def test_replay_matches_pre_refactor_golden_series(name, replay):
    golden = GOLDEN[name]
    got = _series(replay())
    assert got["methods"] == golden["methods"]
    assert got["compressed_sizes"] == golden["compressed_sizes"]
    assert got["original_sizes"] == golden["original_sizes"]
    assert got["compression_times"] == golden["compression_times"]


def test_replay_is_internally_deterministic():
    first = _series(figure8_commercial_replay())
    second = _series(figure8_commercial_replay())
    assert first == second
