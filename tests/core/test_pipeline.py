"""Unit tests for the adaptive block pipeline."""

import pytest

from repro.core.pipeline import (
    DEFAULT_BLOCK_SIZE,
    METHOD_CODES,
    AdaptivePipeline,
    BlockRecord,
    StreamResult,
)
from repro.core.policy import FixedPolicy
from repro.data.commercial import CommercialDataGenerator
from repro.netsim.clock import VirtualClock
from repro.netsim.cpu import DEFAULT_COSTS, SUN_FIRE
from repro.netsim.link import PAPER_LINKS, SimulatedLink, make_link
from repro.netsim.loadtrace import LoadTrace


def blocks(count=6, size=32 * 1024, seed=11):
    return list(CommercialDataGenerator(seed=seed).stream(size, count))


def pipeline(**kwargs):
    kwargs.setdefault("cost_model", DEFAULT_COSTS)
    kwargs.setdefault("cpu", SUN_FIRE)
    kwargs.setdefault("block_size", 32 * 1024)
    return AdaptivePipeline(**kwargs)


class TestBasics:
    def test_paper_block_size_default(self):
        assert DEFAULT_BLOCK_SIZE == 128 * 1024

    def test_method_codes_match_figures(self):
        assert METHOD_CODES == {
            "none": 1,
            "lempel-ziv": 2,
            "burrows-wheeler": 3,
            "huffman": 4,
        }

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            AdaptivePipeline(block_size=100)

    def test_negative_production_interval_rejected(self):
        with pytest.raises(ValueError):
            pipeline().run(blocks(1), make_link("1gbit"), production_interval=-1)


class TestRun:
    def test_one_record_per_block(self):
        result = pipeline().run(blocks(5), make_link("100mbit"))
        assert len(result.records) == 5
        assert [r.index for r in result.records] == list(range(5))

    def test_empty_blocks_skipped(self):
        result = pipeline().run([b"", b"x" * 32768, b""], make_link("100mbit"))
        assert len(result.records) == 1

    def test_total_bytes_accounted(self):
        data = blocks(4)
        result = pipeline().run(data, make_link("100mbit"))
        assert result.total_original_bytes == sum(len(b) for b in data)

    def test_deterministic_in_modeled_mode(self):
        a = pipeline().run(blocks(6), make_link("100mbit", seed=3))
        b = pipeline().run(blocks(6), make_link("100mbit", seed=3))
        assert [r.method for r in a.records] == [r.method for r in b.records]
        assert a.total_time == b.total_time

    def test_fast_link_mostly_uncompressed(self):
        result = pipeline().run(blocks(8), make_link("1gbit"))
        methods = [r.method for r in result.records[1:]]  # skip startup block
        assert methods.count("none") >= len(methods) - 1

    def test_slow_link_compresses(self):
        result = pipeline().run(blocks(8), make_link("1mbit"))
        compressed = [r for r in result.records if r.method != "none"]
        assert len(compressed) >= 6
        assert result.total_compressed_bytes < result.total_original_bytes

    def test_load_triggers_escalation(self):
        # constant heavy load on the 100mbit link
        trace = LoadTrace.from_pairs([(0, 60), (1000, 60)])
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=1, congestion_per_connection=0.5)
        result = pipeline().run(blocks(8), link, load=trace)
        assert any(r.method == "burrows-wheeler" for r in result.records)

    def test_production_interval_paces_blocks(self):
        result = pipeline().run(
            blocks(4), make_link("1gbit"), production_interval=2.0
        )
        starts = [r.start_time for r in result.records]
        assert starts == pytest.approx([0.0, 2.0, 4.0, 6.0], abs=0.5)

    def test_pipelined_no_slower_than_synchronous(self):
        data = blocks(10)
        sync = pipeline().run(data, make_link("1mbit", seed=2))
        piped = pipeline().run(data, make_link("1mbit", seed=2), pipelined=True)
        assert piped.total_time <= sync.total_time + 1e-9

    def test_verify_mode_roundtrips(self):
        result = pipeline(verify=True).run(blocks(3), make_link("1mbit"))
        assert len(result.records) == 3

    def test_custom_clock_used(self):
        clock = VirtualClock(start=100.0)
        result = pipeline().run(blocks(2), make_link("100mbit"), clock=clock)
        assert result.records[0].start_time == 100.0
        assert clock.now() > 100.0

    def test_sample_time_recorded_except_last_block(self):
        result = pipeline().run(blocks(3), make_link("1mbit"))
        assert result.records[0].sample_time > 0
        assert result.records[-1].sample_time == 0.0

    def test_fixed_none_policy_passthrough(self):
        result = pipeline(policy=FixedPolicy("none")).run(blocks(4), make_link("1mbit"))
        assert all(r.method == "none" for r in result.records)
        assert result.total_compressed_bytes == result.total_original_bytes
        assert result.total_compression_time == 0.0


class TestRecordsAndResult:
    def test_block_record_properties(self):
        record = BlockRecord(
            index=0, start_time=0.0, send_start_time=0.1, method="lempel-ziv",
            original_size=1000, compressed_size=400, compression_time=0.01,
            send_time=0.2, decompression_time=0.02, sample_time=0.0,
            sending_time_estimate=0.3, lz_reducing_speed=1e6,
            sampled_ratio=0.4, connections=8.0,
        )
        assert record.ratio == 0.4
        assert record.method_code == 2
        assert record.delivery_time == pytest.approx(0.22)

    def test_stream_result_aggregates(self):
        result = pipeline().run(blocks(5), make_link("1mbit", seed=7))
        summary = result.summary()
        assert summary["blocks"] == 5
        assert summary["total_time_s"] == result.total_time
        assert 0 < summary["overall_ratio"] <= 1.0
        assert sum(result.method_counts().values()) == 5

    def test_series_lengths(self):
        result = pipeline().run(blocks(4), make_link("1mbit"))
        assert len(result.method_series()) == 4
        assert len(result.compression_time_series()) == 4
        assert len(result.block_size_series()) == 4

    def test_compression_fraction_bounds(self):
        result = pipeline().run(blocks(6), make_link("1mbit"))
        assert 0.0 <= result.compression_time_fraction <= 1.0

    def test_empty_result(self):
        result = StreamResult([], 0.0)
        assert result.overall_ratio == 1.0
        assert result.compression_time_fraction == 0.0
        assert result.method_counts() == {}

    def test_deadline_misses(self):
        """Interactive pacing (§1): on a loaded slow link, uncompressed
        blocks blow the production deadline; adaptive compression keeps
        more of them inside it."""
        from repro.core.policy import FixedPolicy
        from repro.netsim.loadtrace import LoadTrace

        trace = LoadTrace.from_pairs([(0, 50)])
        deadline = 2.0
        data = blocks(12)

        def misses(policy):
            link = SimulatedLink(
                PAPER_LINKS["1mbit"], seed=4, congestion_per_connection=0.25
            )
            result = pipeline(policy=policy).run(
                data, link, load=trace, production_interval=deadline
            )
            return result.deadline_misses(deadline)

        assert misses(FixedPolicy("none")) > misses(None)

    def test_deadline_validation(self):
        result = StreamResult([], 0.0)
        with pytest.raises(ValueError):
            result.deadline_misses(0.0)


class TestAdaptationDynamics:
    def test_reacts_to_load_change(self):
        """No compression while idle, compression once load arrives."""
        trace = LoadTrace.from_pairs([(0, 0), (30, 60), (1000, 60)])
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=1, congestion_per_connection=0.5)
        result = pipeline().run(
            blocks(30), link, load=trace, production_interval=2.0
        )
        early = [r.method for r in result.records if r.start_time < 28][1:]
        # Allow a few blocks of EWMA convergence after the load step at t=30.
        late = [r.method for r in result.records if r.start_time > 48]
        assert early.count("none") == len(early)
        assert late and all(m != "none" for m in late)

    def test_recovers_when_load_drops(self):
        trace = LoadTrace.from_pairs([(0, 60), (40, 0), (1000, 0)])
        link = SimulatedLink(PAPER_LINKS["100mbit"], seed=1, congestion_per_connection=0.5)
        result = pipeline().run(
            blocks(30), link, load=trace, production_interval=2.0
        )
        late = [r.method for r in result.records if r.start_time > 60]
        assert late.count("none") >= len(late) - 2
