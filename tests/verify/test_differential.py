"""Differential oracles: stdlib wire counterparts, scalar loops, pools."""

import bz2
import zlib

from repro.verify.corpus import CorpusGenerator
from repro.verify.differential import (
    counterpart_for,
    diff_scalar_vectorized,
    diff_serial_parallel,
    diff_wire_counterpart,
    differential_failures,
    run_differential,
)


def _small_corpus():
    return CorpusGenerator(size=4096).as_dict()


class TestWireCounterparts:
    def test_known_counterparts(self):
        assert counterpart_for("lempel-ziv-native").label == "zlib"
        assert counterpart_for("burrows-wheeler-native").label == "bz2"
        assert counterpart_for("huffman") is None

    def test_no_counterpart_yields_no_results(self):
        assert diff_wire_counterpart("huffman", "case", b"data") == []

    def test_zlib_cross_decode(self):
        data = _small_corpus()["commercial"]
        results = diff_wire_counterpart("lempel-ziv-native", "commercial", data)
        assert len(results) == 2
        assert not differential_failures(results)

    def test_stdlib_really_shares_the_wire(self):
        # Belt and braces: assert the premise directly, not just via the kit.
        from repro.compression.registry import get_codec

        data = _small_corpus()["lowentropy"]
        assert zlib.decompress(get_codec("lempel-ziv-native").compress(data)) == data
        assert bz2.decompress(get_codec("burrows-wheeler-native").compress(data)) == data


class TestScalarVectorized:
    def test_hot_loops_match_references(self):
        data = _small_corpus()["rle-adversarial"]
        results = diff_scalar_vectorized("rle-adversarial", data)
        assert not differential_failures(results)
        subjects = {result.subject for result in results}
        assert {"mtf-encode", "rle-encode", "bwt-transform"} <= subjects

    def test_timings_are_recorded(self):
        data = _small_corpus()["lowentropy"]
        results = diff_scalar_vectorized("lowentropy", data)
        timed = [r for r in results if r.subject_seconds or r.reference_seconds]
        assert timed, "measure_callable timings missing from differential results"


class TestSerialParallel:
    def test_pool_strategy_never_reaches_the_wire(self):
        data = _small_corpus()["commercial"]
        results = diff_serial_parallel("huffman", "commercial", data)
        assert not differential_failures(results)


def test_full_sweep_passes():
    results = run_differential(corpus=_small_corpus())
    failures = differential_failures(results)
    assert not failures, "\n".join(
        f"{f.kind} {f.subject} {f.case}: {f.detail}" for f in failures
    )
