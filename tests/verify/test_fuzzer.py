"""The deterministic fuzzer: schedule, shrinking, crash corpus, replay."""

import json
from pathlib import Path

import pytest

from repro.verify.corpus import CorpusGenerator
from repro.verify.fuzz import (
    CrashEntry,
    Fuzzer,
    FuzzTarget,
    build_default_targets,
    load_corpus,
    mutated_copies,
    replay_corpus,
    write_corpus,
)

COMMITTED_CORPUS = Path(__file__).parent / "crash_corpus.jsonl"


def _run(seed, iterations=150):
    corpus = CorpusGenerator(size=2048).as_dict()
    return Fuzzer(seed=seed, corpus=corpus).run(iterations=iterations)


class TestDeterminism:
    def test_same_seed_same_verdict(self):
        first, second = _run(seed=42), _run(seed=42)
        assert first.iterations_run == second.iterations_run
        assert first.signatures == second.signatures
        assert [c.id for c in first.crashes] == [c.id for c in second.crashes]
        assert first.pool_sizes == second.pool_sizes

    def test_mutated_copies_deterministic(self):
        import random

        payload = b"the canonical mutation corpus" * 8
        first = list(mutated_copies(payload, random.Random(3)))
        second = list(mutated_copies(payload, random.Random(3)))
        assert first == second

    def test_budget_only_truncates(self):
        class _SteppingClock:
            def __init__(self):
                self.t = 0.0

            def now(self):
                self.t += 1.0
                return self.t

        corpus = CorpusGenerator(size=2048).as_dict()
        report = Fuzzer(seed=1, corpus=corpus).run(
            iterations=10_000, budget_seconds=5.0, clock=_SteppingClock()
        )
        assert report.budget_exhausted
        assert report.iterations_run < 10_000
        assert not report.crashes


class _Brittle:
    """A target that crashes whenever the byte 0x42 appears."""

    @staticmethod
    def execute(data: bytes) -> bytes:
        if 0x42 in data:
            raise IndexError("boom")
        return data


class TestShrinking:
    def _target(self):
        return FuzzTarget(name="brittle", execute=_Brittle.execute, seeds=(b"safe",))

    def test_shrinks_to_single_byte(self):
        fuzzer = Fuzzer(seed=0, targets=[self._target()])
        noisy = b"x" * 300 + b"\x42" + b"y" * 500
        minimal = fuzzer.shrink(self._target(), noisy, "IndexError")
        assert minimal == b"\x42"

    def test_fuzzer_records_shrunken_crash(self):
        target = FuzzTarget(
            name="brittle", execute=_Brittle.execute, seeds=(b"\x42" + b"pad" * 40,)
        )
        report = Fuzzer(seed=0, targets=[target]).run(iterations=10)
        assert len(report.crashes) == 1
        crash = report.crashes[0]
        assert crash.error_type == "IndexError"
        assert crash.data == b"\x42"
        assert crash.iteration == -1  # found in the unmutated seed round


class TestCrashCorpus:
    def _entry(self, data=b"\x42", target="brittle"):
        return CrashEntry(
            id="abc123def456",
            target=target,
            seed=9,
            iteration=3,
            error_type="IndexError",
            error_message="boom",
            data=data,
        )

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "crashes.jsonl"
        write_corpus(str(path), [self._entry()])
        loaded = load_corpus(str(path))
        assert loaded == [self._entry()]
        # every line is standalone JSON with base64 data
        raw = json.loads(path.read_text().splitlines()[0])
        assert raw["data_b64"] == "Qg=="

    def test_load_skips_comments_and_blanks(self, tmp_path):
        path = tmp_path / "crashes.jsonl"
        write_corpus(str(path), [self._entry()])
        path.write_text("# comment\n\n" + path.read_text())
        assert len(load_corpus(str(path))) == 1

    def test_replay_flags_still_failing_entries(self):
        target = FuzzTarget(name="brittle", execute=_Brittle.execute)
        results = replay_corpus([self._entry()], targets=[target])
        [(entry, still_fails, detail)] = results
        assert still_fails
        assert "IndexError" in detail

    def test_replay_passes_fixed_entries(self):
        fixed = FuzzTarget(name="brittle", execute=lambda data: data)
        [(_, still_fails, _)] = replay_corpus([self._entry()], targets=[fixed])
        assert not still_fails

    def test_replay_unknown_target_fails(self):
        [(_, still_fails, detail)] = replay_corpus(
            [self._entry(target="no-such-surface")], targets=[]
        )
        assert still_fails
        assert "unknown target" in detail


class TestCommittedCorpus:
    """The repository's regression corpus must stay green forever."""

    def test_exists_and_replays_clean(self):
        entries = load_corpus(str(COMMITTED_CORPUS))
        assert entries, "committed crash corpus is empty"
        still = [
            (entry.id, detail)
            for entry, fails, detail in replay_corpus(entries)
            if fails
        ]
        assert not still, f"regression corpus entries failing again: {still}"


class TestDefaultTargets:
    def test_covers_every_registered_codec(self):
        from repro.compression.registry import available_codecs

        names = {target.name for target in build_default_targets()}
        assert {"framing", "streaming", "wire"} <= names
        for codec_name in available_codecs():
            assert f"codec:{codec_name}" in names

    def test_short_run_is_clean(self):
        report = _run(seed=7, iterations=60)
        assert report.crashes == []
        assert report.signatures > 0


@pytest.mark.parametrize("bad", [b"", b"\x80\x00", b"\xff" * 32])
def test_adversarial_seeds_never_violate(bad):
    for target in build_default_targets():
        try:
            target.execute(bad)
        except target.acceptable:
            pass
