"""The conformance kit: every registered codec, zero per-codec test code.

The kit's own guarantee is tested from both sides: the real registry must
pass every check, and a deliberately broken codec registered on the fly
must be flagged without writing a single codec-specific assertion.
"""

import pytest

from repro.compression.base import Codec, CorruptStreamError
from repro.compression.registry import (
    available_codecs,
    register_codec,
    unregister_codec,
)
from repro.verify.conformance import (
    CONFORMANCE_CHECKS,
    conformance_failures,
    run_conformance,
)
from repro.verify.corpus import CorpusGenerator


@pytest.fixture(scope="module")
def small_corpus():
    return CorpusGenerator(size=4096).as_dict()


@pytest.fixture(scope="module")
def full_results(small_corpus):
    """One kit run over the whole registry, shared by the module."""
    return run_conformance(corpus=small_corpus)


class TestRegistryConformance:
    def test_every_codec_passes(self, full_results):
        failures = conformance_failures(full_results)
        assert not failures, "\n".join(
            f"{f.check} {f.codec} {f.case}: {f.detail}" for f in failures
        )

    def test_every_codec_is_covered(self, full_results):
        covered = {result.codec for result in full_results}
        assert covered == set(available_codecs())

    def test_every_check_ran(self, full_results):
        ran = {result.check for result in full_results}
        # Lossy-only and lossless-only checks still emit skipped-as-passed
        # results, so the full registry exercises the complete kit.
        assert ran == set(CONFORMANCE_CHECKS)


class _TruncatingCodec(Codec):
    """Broken on purpose: drops the last byte of every round trip."""

    name = "broken-truncating"
    family = "test"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, payload: bytes) -> bytes:
        return payload[:-1]


class _CrashingCodec(Codec):
    """Broken on purpose: decode crashes outside the contract."""

    name = "broken-crashing"
    family = "test"

    def compress(self, data: bytes) -> bytes:
        return bytes(reversed(data))

    def decompress(self, payload: bytes) -> bytes:
        # Odd lengths are always present in the canonical mutation set
        # (payload and payload[:-1] differ in parity).
        if len(payload) % 2 == 1:
            raise IndexError("outside the corruption contract")
        return bytes(reversed(payload))


class TestBrokenCodecIsFlagged:
    """Registering a bad codec is all it takes — the kit finds it."""

    @pytest.mark.parametrize("codec_class", [_TruncatingCodec, _CrashingCodec])
    def test_flagged_with_zero_new_test_code(self, codec_class, small_corpus):
        register_codec(codec_class.name, codec_class)
        try:
            results = run_conformance(names=[codec_class.name], corpus=small_corpus)
        finally:
            unregister_codec(codec_class.name)
        failures = conformance_failures(results)
        assert failures, f"kit missed the deliberately broken {codec_class.name}"
        assert all(f.codec == codec_class.name for f in failures)

    def test_contract_exceptions_are_not_flagged(self, small_corpus):
        class _RejectingCodec(Codec):
            name = "broken-rejecting"
            family = "test"

            def compress(self, data: bytes) -> bytes:
                return data

            def decompress(self, payload: bytes) -> bytes:
                if payload and payload[0] & 1:
                    raise CorruptStreamError("contract rejection is allowed")
                return payload

        register_codec(_RejectingCodec.name, _RejectingCodec)
        try:
            results = run_conformance(
                names=[_RejectingCodec.name],
                corpus=small_corpus,
                checks=["corruption-discipline"],
            )
        finally:
            unregister_codec(_RejectingCodec.name)
        assert not conformance_failures(results)


class TestBufferProtocolCheck:
    """The buffer-protocol-inputs check: bytes/bytearray/memoryview parity."""

    def test_check_is_part_of_the_kit(self):
        assert "buffer-protocol-inputs" in CONFORMANCE_CHECKS

    def test_input_type_sensitive_codec_is_flagged(self, small_corpus):
        class _TypeSensitiveCodec(Codec):
            """Broken on purpose: views compress differently than bytes."""

            name = "broken-type-sensitive"
            family = "test"

            def compress(self, data: bytes) -> bytes:
                if isinstance(data, bytes):
                    return data
                return bytes(data) + b"\x00"  # views get a stray suffix

            def decompress(self, payload: bytes) -> bytes:
                return bytes(payload).rstrip(b"\x00")

        register_codec(_TypeSensitiveCodec.name, _TypeSensitiveCodec)
        try:
            results = run_conformance(
                names=[_TypeSensitiveCodec.name],
                corpus=small_corpus,
                checks=["buffer-protocol-inputs"],
            )
        finally:
            unregister_codec(_TypeSensitiveCodec.name)
        failures = conformance_failures(results)
        assert failures, "kit missed the input-type-sensitive codec"
        assert all(f.check == "buffer-protocol-inputs" for f in failures)
