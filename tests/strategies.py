"""Shared hypothesis strategies and suite-wide constants.

Single home for the generators every property test reaches for: codec
names straight from the registry, payload corpora, the RLE-adversarial
alphabet, and the one ambient RNG seed (pinned before every test by the
autouse fixture in ``tests/conftest.py``, the same way
``benchmarks/conftest.py`` pins the benchmark suite).
"""

from hypothesis import strategies as st

from repro.compression.registry import available_codecs, get_codec

#: The single ambient seed the whole test suite starts from (mirrors
#: BENCH_SEED in benchmarks/conftest.py).
SUITE_SEED = 20040431

#: Every registered codec that must satisfy the lossless round-trip
#: contract ("none" is the identity codec; lossy codecs only bound error).
LOSSLESS_CODECS = [
    name
    for name in available_codecs()
    if get_codec(name).family != "lossy" and name != "none"
]

#: A medium-entropy, string-repetitive seed block for corruption tests.
SEED_DATA = b"the configurable compression corruption corpus " * 64

#: The paper's four simulated link classes.
LINK_NAMES = ["1gbit", "100mbit", "1mbit", "international"]


def lossless_codec_names() -> st.SearchStrategy:
    """One registered lossless codec name."""
    return st.sampled_from(LOSSLESS_CODECS)


def payloads(max_size: int = 2048) -> st.SearchStrategy:
    """Arbitrary byte payloads, the default round-trip input."""
    return st.binary(max_size=max_size)


def rle_adversarial_payloads(max_size: int = 1500) -> st.SearchStrategy:
    """Bytes skewed toward the RLE escape machinery (0-runs, 253/254/255)."""
    return st.lists(
        st.sampled_from([0, 0, 0, 0, 1, 7, 253, 254, 255]), max_size=max_size
    ).map(bytes)


def link_names() -> st.SearchStrategy:
    """One of the paper's simulated link classes."""
    return st.sampled_from(LINK_NAMES)


def stream_block_sizes() -> st.SearchStrategy:
    """Valid streaming block sizes (the API floor is 1024)."""
    return st.sampled_from([1024, 2048, 4096, 16 * 1024])


def log_line_payloads(max_lines: int = 64) -> st.SearchStrategy:
    """Newline-joined templated log lines for the template codec.

    Lines are drawn from a handful of skeletons whose slots carry the
    three typed values the miner channels (decimal runs, dotted quads,
    long hex runs), so generated blocks exercise every channel mode while
    hypothesis still shrinks to readable minimal examples.
    """
    octet = st.integers(min_value=0, max_value=255)
    ip = st.builds(lambda a, b, c, d: f"{a}.{b}.{c}.{d}", octet, octet, octet, octet)
    number = st.integers(min_value=0, max_value=2**48)
    digest = st.integers(min_value=0, max_value=2**64 - 1).map(lambda v: "%016x" % v)
    line = st.one_of(
        st.builds("ts={} level=INFO worker accepted from {}".format, number, ip),
        st.builds("ts={} level=WARN retry seq={} digest={}".format, number, number, digest),
        st.builds("block {} replicated to {} in {} ms".format, digest, ip, number),
        st.builds("heartbeat {}".format, number),
    )
    return (
        st.lists(line, min_size=0, max_size=max_lines)
        .map(lambda lines: "".join(item + "\n" for item in lines).encode("ascii"))
    )


def record_payloads(max_records: int = 96) -> st.SearchStrategy:
    """Fixed-width little-endian uint64 record arrays for columnar.

    Each record is four 8-byte fields: a slowly-advancing counter-like
    field, a free 64-bit field, and two narrow fields — together covering
    the delta, delta-of-delta, and raw column modes.
    """
    u64 = st.integers(min_value=0, max_value=2**64 - 1)
    narrow = st.integers(min_value=0, max_value=2**12)
    record = st.tuples(st.integers(min_value=0, max_value=2**40), u64, narrow, narrow)
    return st.lists(record, min_size=0, max_size=max_records).map(
        lambda records: b"".join(
            value.to_bytes(8, "little") for record in records for value in record
        )
    )
