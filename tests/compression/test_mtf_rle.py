"""Unit tests for move-to-front and the 254-capped RLE stage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.mtf import mtf_decode, mtf_encode
from repro.compression.rle import ESCAPE, MAX_RUN, rle_decode, rle_encode
from repro.verify.references import (
    reference_mtf_decode,
    reference_mtf_encode,
    reference_rle_encode,
)
from tests.strategies import rle_adversarial_payloads


class TestMtf:
    def test_empty(self):
        assert mtf_encode(b"") == b""
        assert mtf_decode(b"") == b""

    def test_first_occurrence_emits_byte_value(self):
        # With the identity initial table, byte b first appears as index b.
        assert mtf_encode(b"\x05") == b"\x05"

    def test_repeat_emits_zero(self):
        encoded = mtf_encode(b"zz")
        assert encoded[1] == 0

    def test_runs_become_zeros(self):
        encoded = mtf_encode(b"m" * 100)
        assert encoded[1:] == b"\x00" * 99

    def test_alternation_emits_ones(self):
        encoded = mtf_encode(b"ababab")
        assert list(encoded[2:]) == [1, 1, 1, 1]

    def test_roundtrip_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[:16384]
            assert mtf_decode(mtf_encode(sample)) == sample, name

    def test_index_255_reachable(self):
        # Access byte 255 first (index 255), then byte 254 (now at 255).
        data = bytes([255, 254])
        encoded = mtf_encode(data)
        assert encoded[0] == 255
        assert mtf_decode(encoded) == data

    @given(st.binary(max_size=2048))
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        assert mtf_decode(mtf_encode(data)) == data


class TestRle:
    def test_empty(self):
        assert rle_encode(b"") == b""
        assert rle_decode(b"") == b""

    def test_no_255_in_output(self, corpus):
        for name, data in corpus.items():
            encoded = rle_encode(data[:16384])
            assert 255 not in encoded, name

    def test_zero_run_compressed(self):
        data = b"\x00" * 100
        encoded = rle_encode(data)
        assert len(encoded) < 10
        assert rle_decode(encoded) == data

    def test_run_capped_at_254(self):
        data = b"\x00" * 1000
        encoded = rle_encode(data)
        # escape arguments encoding runs must not exceed MAX_RUN
        i = 0
        while i < len(encoded):
            if encoded[i] == ESCAPE:
                assert encoded[i + 1] <= MAX_RUN
                i += 2
            else:
                i += 1
        assert rle_decode(encoded) == data

    def test_short_zero_runs_stay_raw(self):
        assert rle_encode(b"\x00\x00") == b"\x00\x00"

    def test_literal_254_escaped(self):
        assert rle_encode(bytes([254])) == bytes([ESCAPE, 0])
        assert rle_decode(bytes([ESCAPE, 0])) == bytes([254])

    def test_literal_255_escaped(self):
        assert rle_encode(bytes([255])) == bytes([ESCAPE, 1])
        assert rle_decode(bytes([ESCAPE, 1])) == bytes([255])

    def test_decode_rejects_raw_255(self):
        with pytest.raises(CorruptStreamError):
            rle_decode(b"\xff")

    def test_decode_rejects_escape_255(self):
        with pytest.raises(CorruptStreamError):
            rle_decode(bytes([ESCAPE, 255]))

    def test_decode_rejects_truncated_escape(self):
        with pytest.raises(CorruptStreamError):
            rle_decode(bytes([ESCAPE]))

    def test_roundtrip_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[:16384]
            assert rle_decode(rle_encode(sample)) == sample, name

    @given(st.binary(max_size=2048))
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        assert rle_decode(rle_encode(data)) == data

    @given(rle_adversarial_payloads())
    @settings(max_examples=40)
    def test_roundtrip_adversarial_alphabet(self, data):
        encoded = rle_encode(data)
        assert 255 not in encoded
        assert rle_decode(encoded) == data


class TestVectorizedMatchesReference:
    """The numpy run-boundary rewrites must be byte-equal to the scalar loops."""

    def test_mtf_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[:16384]
            encoded = mtf_encode(sample)
            assert encoded == reference_mtf_encode(sample), name
            assert mtf_decode(encoded) == reference_mtf_decode(encoded), name

    def test_rle_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[:16384]
            assert rle_encode(sample) == reference_rle_encode(sample), name

    @given(st.binary(max_size=2048))
    @settings(max_examples=60)
    def test_mtf_property(self, data):
        assert mtf_encode(data) == reference_mtf_encode(data)

    @given(rle_adversarial_payloads())
    @settings(max_examples=60)
    def test_rle_property(self, data):
        assert rle_encode(data) == reference_rle_encode(data)

    @given(st.binary(max_size=2048))
    @settings(max_examples=40)
    def test_rle_property_general(self, data):
        assert rle_encode(data) == reference_rle_encode(data)
