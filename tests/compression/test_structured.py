"""The structure-aware codec family: template mining and columnar packing.

Covers the contracts the conformance kit cannot express generically:
hypothesis round-trips over templated log lines and fixed-width record
arrays, deterministic mining, typed-channel packing specifics (zero
padding, IP canonicality, odd nibble counts), graceful fallback, the
mutated-header corpus (only :data:`ACCEPTABLE_DECODE_ERRORS`, never a
stray ``struct.error``/``IndexError``), the columnar-vs-zlib ratio claim
on monotonic series, and bit-for-bit equality between the vectorized
column primitives and their scalar references.
"""

import random
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import ACCEPTABLE_DECODE_ERRORS
from repro.compression.structured import (
    ColumnarCodec,
    TemplateCodec,
    bitpack,
    bitunpack,
    delta_zigzag,
    undelta_zigzag,
    zigzag_decode,
    zigzag_encode,
)
from repro.data.logs import LogDataGenerator
from repro.data.timeseries import TimeSeriesGenerator
from repro.verify.fuzz import mutated_copies
from repro.verify.references import (
    reference_bitpack,
    reference_bitunpack,
    reference_delta_zigzag,
    reference_undelta_zigzag,
)
from tests.strategies import log_line_payloads, record_payloads


def _records(*rows):
    return b"".join(v.to_bytes(8, "little") for row in rows for v in row)


class TestTemplateRoundTrip:
    @given(log_line_payloads())
    @settings(max_examples=80, deadline=None)
    def test_hypothesis_log_lines_round_trip(self, data):
        codec = TemplateCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_seeded_log_block_engages_and_round_trips(self):
        data = next(iter(LogDataGenerator(seed=2004).stream(64 * 1024, 1)))
        codec = TemplateCodec()
        payload = codec.compress(data)
        assert not codec.is_fallback(payload)
        assert len(payload) < len(data)
        assert codec.decompress(payload) == data

    def test_mining_is_deterministic(self):
        data = next(iter(LogDataGenerator(seed=11).stream(16 * 1024, 1)))
        assert TemplateCodec().compress(data) == TemplateCodec().compress(data)

    @pytest.mark.parametrize(
        "data",
        [
            # Zero-padded fixed-width counters must restore their padding.
            b"seq=0001 ok\nseq=0002 ok\nseq=0003 ok\nseq=0004 ok\nseq=0005 ok\n",
            # A 30-digit value overflows the channel int cap -> raw slot.
            b"v=123456789012345678901234567890 x\n" * 6,
            # Non-canonical dotted quads (leading zeros, >255 octets).
            b"ip=010.1.1.1 up\nip=1.1.1.300 up\nip=9.9.9.9 up\nip=8.8.8.8 up\n",
            # Odd nibble counts in the hex channel.
            b"h=abcdef012 go\nh=abcdef013 go\nh=abcdef014 go\nh=abcdef015 go\n",
            # Last line unterminated (block boundary mid-line).
            b"a 1\na 2\na 3\na 4\na 5",
            # Mixed template population with empty lines.
            b"alpha 1\n\nbeta 2.2.2.2\nalpha 3\n\nbeta 4.4.4.4\nalpha 5\n",
        ],
    )
    def test_channel_edge_cases_round_trip(self, data):
        codec = TemplateCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestTemplateFallback:
    @pytest.mark.parametrize(
        "data",
        [b"", b"\x5a", b"\x00" * 512, random.Random(3).randbytes(2048), b"one line\n"],
    )
    def test_non_conforming_input_falls_back(self, data):
        codec = TemplateCodec()
        payload = codec.compress(data)
        assert codec.is_fallback(payload)
        assert codec.decompress(payload) == data


class TestColumnarRoundTrip:
    @given(record_payloads())
    @settings(max_examples=80, deadline=None)
    def test_hypothesis_records_round_trip(self, data):
        codec = ColumnarCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_seeded_telemetry_engages_and_round_trips(self):
        data = next(iter(TimeSeriesGenerator(seed=2004).stream(64 * 1024, 1)))
        codec = ColumnarCodec()
        payload = codec.compress(data)
        assert not codec.is_fallback(payload)
        assert len(payload) < len(data)
        assert codec.decompress(payload) == data

    def test_wraparound_counters_round_trip(self):
        top = 2**64
        rows = [((top - 40 + i * 9) % top, i, 7, 2**63) for i in range(64)]
        data = _records(*rows)
        codec = ColumnarCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_encoding_is_deterministic(self):
        data = next(iter(TimeSeriesGenerator(seed=5).stream(16 * 1024, 1)))
        assert ColumnarCodec().compress(data) == ColumnarCodec().compress(data)

    def test_monotonic_series_beats_zlib_level6(self):
        """The differential ratio claim: delta+bitpack on a monotone
        integer series must be strictly smaller than zlib level-6."""
        rng = random.Random(2004)
        value, out = 10_000, []
        for _ in range(4096):
            value += rng.randrange(1, 1000)
            out.append(value)
        data = b"".join(v.to_bytes(8, "little") for v in out)
        payload = ColumnarCodec().compress(data)
        assert not ColumnarCodec().is_fallback(payload)
        assert len(payload) < len(zlib.compress(data, 6))

    @pytest.mark.parametrize(
        "data",
        [b"", b"\xff", random.Random(9).randbytes(4096)],
    )
    def test_non_conforming_input_falls_back(self, data):
        codec = ColumnarCodec()
        payload = codec.compress(data)
        assert codec.is_fallback(payload)
        assert codec.decompress(payload) == data


class TestMutatedHeaders:
    """Corrupted streams raise only ACCEPTABLE_DECODE_ERRORS.

    ``mutated_copies`` supplies the canonical fuzz mutations; on top of
    that, every single-byte overwrite of the header region is tried, so
    the magic/version/mode bytes and the leading varints all get hit.
    """

    @pytest.mark.parametrize("codec_cls", [TemplateCodec, ColumnarCodec])
    def test_mutations_never_crash(self, codec_cls):
        codec = codec_cls()
        if codec_cls is TemplateCodec:
            data = next(iter(LogDataGenerator(seed=8).stream(4096, 1)))
        else:
            data = next(iter(TimeSeriesGenerator(seed=8).stream(4096, 1)))
        payload = codec.compress(data)
        assert not codec.is_fallback(payload)
        rng = random.Random(2004)
        mutants = list(mutated_copies(payload, rng))
        for offset in range(min(len(payload), 48)):
            for value in (0x00, 0x01, 0x7F, 0x80, 0xFF):
                mutant = bytearray(payload)
                mutant[offset] = value
                mutants.append(bytes(mutant))
        for mutant in mutants:
            try:
                result = codec.decompress(mutant)
            except ACCEPTABLE_DECODE_ERRORS:
                continue
            assert isinstance(result, bytes)

    @given(st.binary(max_size=256))
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_blobs_never_crash(self, blob):
        for codec in (TemplateCodec(), ColumnarCodec()):
            try:
                result = codec.decompress(blob)
            except ACCEPTABLE_DECODE_ERRORS:
                continue
            assert isinstance(result, bytes)


class TestPrimitivesMatchReferences:
    """The vectorized column primitives vs the scalar oracles, bit for bit."""

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_delta_zigzag_matches_scalar(self, values):
        column = np.array(values, dtype="<u8")
        encoded = delta_zigzag(column)
        assert [int(v) for v in encoded] == reference_delta_zigzag(values)
        restored = undelta_zigzag(values[0], encoded)
        assert [int(v) for v in restored] == values
        assert reference_undelta_zigzag(values[0], reference_delta_zigzag(values)) == values

    @given(
        st.integers(min_value=1, max_value=64).flatmap(
            lambda width: st.tuples(
                st.just(width),
                st.lists(
                    st.integers(min_value=0, max_value=(1 << width) - 1), max_size=150
                ),
            )
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_bitpack_matches_scalar(self, width_and_values):
        width, values = width_and_values
        column = np.array(values, dtype="<u8")
        packed = bitpack(column, width)
        assert packed == reference_bitpack(values, width)
        unpacked = bitunpack(packed, len(values), width)
        assert [int(v) for v in unpacked] == values
        assert reference_bitunpack(packed, len(values), width) == values

    @given(st.lists(st.integers(min_value=-(2**63), max_value=2**63 - 1), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_zigzag_is_an_involution(self, values):
        signed = np.array(values, dtype="<i8")
        assert list(zigzag_decode(zigzag_encode(signed))) == values
