"""Failure injection: corrupted payloads must never crash the decoders.

The contract (:data:`~repro.compression.base.ACCEPTABLE_DECODE_ERRORS`):
for any mutated compressed stream, ``decompress`` either raises
:class:`CorruptStreamError` (or ``EOFError`` from bit exhaustion) or
returns *some* bytes — it must never raise an unrelated exception
(IndexError, struct.error, infinite loop, ...).  Entropy coders cannot
always detect corruption (a flipped bit may decode to different valid
symbols), so "wrong output" is acceptable; crashing or hanging is not.

The mutation set is the canonical one from :mod:`repro.verify.fuzz`, so
the conformance kit, the fuzz gate, and this suite all agree on what
"corrupted" means.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import get_codec
from repro.compression.base import ACCEPTABLE_DECODE_ERRORS, CorruptStreamError
from repro.middleware.transport import WireFormat
from repro.verify.fuzz import mutated_copies
from tests.strategies import LOSSLESS_CODECS, SEED_DATA


@pytest.mark.parametrize("name", LOSSLESS_CODECS)
def test_bitflips_never_crash(name):
    codec = get_codec(name)
    data = SEED_DATA[:8192] if name.startswith("arithmetic") else SEED_DATA
    payload = codec.compress(data)
    rng = random.Random(hash(name) & 0xFFFF)
    for mutated in mutated_copies(payload, rng):
        try:
            result = codec.decompress(mutated)
        except ACCEPTABLE_DECODE_ERRORS:
            continue
        assert isinstance(result, bytes)


@pytest.mark.parametrize("name", ["quantized-float", "truncated-float"])
def test_lossy_bitflips_never_crash(name):
    import numpy as np

    codec = get_codec(name)
    data = np.linspace(-5.0, 5.0, 4096).astype("<f8").tobytes()
    payload = codec.compress(data)
    rng = random.Random(7)
    for mutated in mutated_copies(payload, rng):
        try:
            result = codec.decompress(mutated)
        except ACCEPTABLE_DECODE_ERRORS:
            continue
        assert isinstance(result, bytes)


@given(st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_random_bytes_as_payload_never_crash(blob):
    for name in LOSSLESS_CODECS:
        codec = get_codec(name)
        try:
            result = codec.decompress(blob)
        except ACCEPTABLE_DECODE_ERRORS:
            continue
        assert isinstance(result, bytes)


class TestWireFormatFuzz:
    def test_mutated_wire_events_never_crash(self):
        from repro.middleware.events import Event

        wire = WireFormat.encode(
            Event(payload=b"payload" * 100, attributes={"k": 1}, channel_id="c", sequence=3)
        )
        rng = random.Random(11)
        for mutated in mutated_copies(wire, rng):
            try:
                event = WireFormat.decode(mutated)
            except (ValueError, KeyError, CorruptStreamError, UnicodeDecodeError):
                continue
            # Decode is zero-copy: payloads arrive as read-only views.
            assert isinstance(event.payload, (bytes, memoryview))
            if isinstance(event.payload, memoryview):
                assert event.payload.readonly

    @given(st.binary(max_size=300))
    @settings(max_examples=80)
    def test_random_wire_bytes_never_crash(self, blob):
        try:
            WireFormat.decode(blob)
        except (ValueError, KeyError, CorruptStreamError, UnicodeDecodeError, TypeError):
            pass
