"""Failure injection: corrupted payloads must never crash the decoders.

The contract: for any mutated compressed stream, ``decompress`` either
raises :class:`CorruptStreamError` (or ``EOFError`` from bit exhaustion)
or returns *some* bytes — it must never raise an unrelated exception
(IndexError, struct.error, infinite loop, ...).  Entropy coders cannot
always detect corruption (a flipped bit may decode to different valid
symbols), so "wrong output" is acceptable; crashing or hanging is not.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import available_codecs, get_codec
from repro.compression.base import CorruptStreamError
from repro.middleware.transport import WireFormat

LOSSLESS = [
    name
    for name in available_codecs()
    if get_codec(name).family != "lossy" and name != "none"
]

_SEED_DATA = b"the configurable compression corruption corpus " * 64

_ACCEPTABLE = (CorruptStreamError, EOFError)


def _mutations(payload: bytes, rng: random.Random, count: int = 24):
    """Yield systematically mutated copies of ``payload``."""
    yield payload[: len(payload) // 2]           # truncation
    yield payload[:-1]                           # off-by-one truncation
    yield payload + b"\x00"                      # trailing junk
    yield b""                                    # empty
    yield b"\xff" * len(payload)                 # total garbage
    for _ in range(count):
        mutated = bytearray(payload)
        position = rng.randrange(len(mutated))
        mutated[position] ^= 1 << rng.randrange(8)
        yield bytes(mutated)


@pytest.mark.parametrize("name", LOSSLESS)
def test_bitflips_never_crash(name):
    codec = get_codec(name)
    data = _SEED_DATA[:8192] if name.startswith("arithmetic") else _SEED_DATA
    payload = codec.compress(data)
    rng = random.Random(hash(name) & 0xFFFF)
    for mutated in _mutations(payload, rng):
        try:
            result = codec.decompress(mutated)
        except _ACCEPTABLE:
            continue
        assert isinstance(result, bytes)


@pytest.mark.parametrize("name", ["quantized-float", "truncated-float"])
def test_lossy_bitflips_never_crash(name):
    import numpy as np

    codec = get_codec(name)
    data = np.linspace(-5.0, 5.0, 4096).astype("<f8").tobytes()
    payload = codec.compress(data)
    rng = random.Random(7)
    for mutated in _mutations(payload, rng):
        try:
            result = codec.decompress(mutated)
        except _ACCEPTABLE:
            continue
        assert isinstance(result, bytes)


@given(st.binary(max_size=600))
@settings(max_examples=60, deadline=None)
def test_random_bytes_as_payload_never_crash(blob):
    for name in LOSSLESS:
        codec = get_codec(name)
        try:
            result = codec.decompress(blob)
        except _ACCEPTABLE:
            continue
        assert isinstance(result, bytes)


class TestWireFormatFuzz:
    def test_mutated_wire_events_never_crash(self):
        from repro.middleware.events import Event

        wire = WireFormat.encode(
            Event(payload=b"payload" * 100, attributes={"k": 1}, channel_id="c", sequence=3)
        )
        rng = random.Random(11)
        for mutated in _mutations(wire, rng):
            try:
                event = WireFormat.decode(mutated)
            except (ValueError, KeyError, CorruptStreamError, UnicodeDecodeError):
                continue
            assert isinstance(event.payload, bytes)

    @given(st.binary(max_size=300))
    @settings(max_examples=80)
    def test_random_wire_bytes_never_crash(self, blob):
        try:
            WireFormat.decode(blob)
        except (ValueError, KeyError, CorruptStreamError, UnicodeDecodeError, TypeError):
            pass
