"""Unit tests for the application-specific lossy codecs (paper §5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.lossy import QuantizedFloatCodec, TruncatedFloatCodec


def floats_to_bytes(values):
    return np.asarray(values, dtype="<f8").tobytes()


def bytes_to_floats(payload):
    return np.frombuffer(payload, dtype="<f8")


class TestQuantizedFloatCodec:
    def test_error_bound_respected(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-100, 100, size=5000)
        codec = QuantizedFloatCodec(tolerance=1e-3)
        restored = bytes_to_floats(codec.decompress(codec.compress(values.tobytes())))
        assert np.abs(restored - values).max() <= codec.max_error() + 1e-12

    @pytest.mark.parametrize("tolerance", [1e-1, 1e-3, 1e-6])
    def test_tighter_tolerance_bigger_payload(self, tolerance):
        rng = np.random.default_rng(2)
        data = floats_to_bytes(rng.uniform(-10, 10, size=4000))
        codec = QuantizedFloatCodec(tolerance=tolerance)
        restored = bytes_to_floats(codec.decompress(codec.compress(data)))
        assert np.abs(restored - bytes_to_floats(data)).max() <= tolerance + 1e-12

    def test_payload_grows_as_tolerance_shrinks(self):
        rng = np.random.default_rng(3)
        data = floats_to_bytes(rng.uniform(-10, 10, size=4000))
        coarse = len(QuantizedFloatCodec(tolerance=1e-1).compress(data))
        fine = len(QuantizedFloatCodec(tolerance=1e-5).compress(data))
        assert coarse < fine

    def test_beats_lossless_on_random_coordinates(self):
        from repro.compression.lz77 import Lz77Codec
        from repro.data.molecular import MolecularDataGenerator

        coords = MolecularDataGenerator(4096, seed=5).coordinates_block()
        lossy = QuantizedFloatCodec(tolerance=1e-3).compress(coords)
        lossless = Lz77Codec().compress(coords)
        assert len(lossy) < len(lossless) * 0.5  # the §5 motivation

    def test_smooth_series_compress_extremely_well(self):
        values = np.linspace(0.0, 1.0, 8000)
        codec = QuantizedFloatCodec(tolerance=1e-4)
        payload = codec.compress(values.tobytes())
        assert len(payload) < len(values.tobytes()) * 0.05

    def test_empty(self):
        codec = QuantizedFloatCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_large_jump_escape_path(self):
        values = np.array([0.0, 1e9, -1e9, 0.5, 1e9])
        codec = QuantizedFloatCodec(tolerance=1e-3)
        restored = bytes_to_floats(codec.decompress(codec.compress(values.tobytes())))
        assert np.abs(restored - values).max() <= codec.max_error() + 1e-3

    def test_non_float_payload_rejected(self):
        with pytest.raises(CorruptStreamError):
            QuantizedFloatCodec().compress(b"abc")

    def test_nan_rejected(self):
        with pytest.raises(CorruptStreamError):
            QuantizedFloatCodec().compress(floats_to_bytes([1.0, float("nan")]))

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            QuantizedFloatCodec(tolerance=0.0)

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            QuantizedFloatCodec().decompress(b"XXXX" + b"\x00" * 16)

    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_error_bound_property(self, values):
        codec = QuantizedFloatCodec(tolerance=1e-2)
        data = floats_to_bytes(values)
        restored = bytes_to_floats(codec.decompress(codec.compress(data)))
        if values:
            assert np.abs(restored - np.asarray(values)).max() <= codec.max_error() + 1e-9


class TestTruncatedFloatCodec:
    def test_relative_error_bound(self):
        rng = np.random.default_rng(4)
        values = rng.uniform(-1e6, 1e6, size=5000)
        codec = TruncatedFloatCodec(mantissa_bits=20)
        restored = bytes_to_floats(codec.decompress(codec.compress(values.tobytes())))
        relative = np.abs((restored - values) / values)
        assert relative.max() <= codec.max_relative_error()

    def test_full_mantissa_is_lossless(self):
        rng = np.random.default_rng(5)
        data = floats_to_bytes(rng.uniform(-1, 1, size=1000))
        codec = TruncatedFloatCodec(mantissa_bits=52)
        assert codec.decompress(codec.compress(data)) == data

    def test_fewer_bits_smaller_payload(self):
        rng = np.random.default_rng(6)
        data = floats_to_bytes(rng.uniform(-1, 1, size=4000))
        small = len(TruncatedFloatCodec(mantissa_bits=8).compress(data))
        large = len(TruncatedFloatCodec(mantissa_bits=44).compress(data))
        assert small < large

    def test_signs_and_zeros_preserved(self):
        values = np.array([0.0, -0.0, 1.5, -1.5, 1e-300, -1e-300])
        codec = TruncatedFloatCodec(mantissa_bits=12)
        restored = bytes_to_floats(codec.decompress(codec.compress(values.tobytes())))
        assert np.all(np.signbit(restored) == np.signbit(values))
        assert restored[0] == 0.0

    def test_empty(self):
        codec = TruncatedFloatCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_non_float_payload_rejected(self):
        with pytest.raises(CorruptStreamError):
            TruncatedFloatCodec().compress(b"abcdefg")

    def test_invalid_mantissa_bits(self):
        with pytest.raises(ValueError):
            TruncatedFloatCodec(mantissa_bits=53)
        with pytest.raises(ValueError):
            TruncatedFloatCodec(mantissa_bits=-1)

    def test_bad_magic(self):
        with pytest.raises(CorruptStreamError):
            TruncatedFloatCodec().decompress(b"XXXX\x14\x00")

    @given(
        st.lists(
            st.floats(
                allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
            ).filter(lambda v: v == 0 or abs(v) > 1e-12),
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_relative_error_property(self, values):
        codec = TruncatedFloatCodec(mantissa_bits=24)
        data = floats_to_bytes(values)
        restored = bytes_to_floats(codec.decompress(codec.compress(data)))
        original = np.asarray(values, dtype=np.float64)
        nonzero = original != 0
        if nonzero.any():
            relative = np.abs(
                (restored[nonzero] - original[nonzero]) / original[nonzero]
            )
            assert relative.max() <= codec.max_relative_error()
        assert np.all(restored[~nonzero] == 0.0)
