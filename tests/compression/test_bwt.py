"""Unit tests for the suffix-array Burrows-Wheeler transform."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.bwt import bwt_inverse, bwt_transform, suffix_array


class TestSuffixArray:
    def test_empty(self):
        assert len(suffix_array(np.array([], dtype=np.int64))) == 0

    def test_banana(self):
        # suffixes of "banana\x00"-style with sentinel appended by caller
        text = np.array([2, 1, 3, 1, 3, 1, 0], dtype=np.int64)  # b=2,a=1,n=3,$=0
        sa = suffix_array(text).tolist()
        # $  a$  ana$  anana$  banana$  na$  nana$
        assert sa == [6, 5, 3, 1, 0, 4, 2]

    def test_all_equal_with_sentinel(self):
        text = np.array([1, 1, 1, 1, 0], dtype=np.int64)
        sa = suffix_array(text).tolist()
        assert sa == [4, 3, 2, 1, 0]

    def test_matches_naive_sort(self):
        rng = np.random.default_rng(3)
        data = rng.integers(1, 5, size=200).tolist() + [0]
        arr = np.array(data, dtype=np.int64)
        sa = suffix_array(arr).tolist()
        naive = sorted(range(len(data)), key=lambda i: data[i:])
        assert sa == naive

    @given(st.lists(st.integers(min_value=1, max_value=4), max_size=80))
    @settings(max_examples=50)
    def test_property_matches_naive(self, values):
        data = values + [0]
        arr = np.array(data, dtype=np.int64)
        assert suffix_array(arr).tolist() == sorted(
            range(len(data)), key=lambda i: data[i:]
        )


class TestBwtTransform:
    def test_empty(self):
        assert bwt_transform(b"") == (b"", 0)

    def test_output_is_permutation(self):
        data = b"the burrows wheeler transform"
        last, primary = bwt_transform(data)
        assert sorted(last) == sorted(data)
        assert 0 <= primary <= len(data)

    def test_known_banana(self):
        last, primary = bwt_transform(b"banana")
        restored = bwt_inverse(last, primary)
        assert restored == b"banana"

    def test_groups_runs(self):
        # BWT of repetitive text clusters identical characters.
        data = b"she sells sea shells by the sea shore " * 20
        last, _ = bwt_transform(data)
        runs = sum(1 for a, b in zip(last, last[1:]) if a == b)
        baseline = sum(1 for a, b in zip(data, data[1:]) if a == b)
        assert runs > baseline

    def test_periodic_input(self):
        data = b"ab" * 500
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == data

    def test_all_identical(self):
        data = b"\xee" * 1000
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == data


class TestBwtInverse:
    def test_primary_out_of_range(self):
        with pytest.raises(CorruptStreamError):
            bwt_inverse(b"abc", 17)

    def test_negative_primary(self):
        with pytest.raises(CorruptStreamError):
            bwt_inverse(b"abc", -1)

    def test_empty_with_bad_primary(self):
        with pytest.raises(CorruptStreamError):
            bwt_inverse(b"", 3)

    def test_corrupt_column_detected_or_garbage(self):
        data = b"hello hello hello hello"
        last, primary = bwt_transform(data)
        mangled = bytes(reversed(last))
        try:
            restored = bwt_inverse(mangled, primary)
            assert restored != data
        except CorruptStreamError:
            pass  # also acceptable

    def test_roundtrip_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[: 32 * 1024]
            last, primary = bwt_transform(sample)
            assert bwt_inverse(last, primary) == sample, name

    @given(st.binary(max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == data


class TestInverseMatchesSequentialReference:
    """The pointer-doubling inverse must equal the classic one-step walk."""

    @staticmethod
    def sequential_inverse(last_column: bytes, primary: int) -> bytes:
        n = len(last_column)
        if n == 0:
            return b""
        m = n + 1
        column = np.empty(m, dtype=np.int64)
        values = np.frombuffer(last_column, dtype=np.uint8).astype(np.int64) + 1
        column[:primary] = values[:primary]
        column[primary] = 0
        column[primary + 1 :] = values[primary:]
        order = np.argsort(column, kind="stable")
        lf = np.empty(m, dtype=np.int64)
        lf[order] = np.arange(m)
        shifted = []  # 0..256: byte values are stored +1, sentinel is 0
        row = primary
        for _ in range(m):
            shifted.append(int(column[row]))
            row = int(lf[row])
        shifted.reverse()
        assert shifted[-1] == 0  # sentinel must close the orbit
        return bytes(value - 1 for value in shifted[:-1])

    def test_corpus(self, corpus):
        for name, data in corpus.items():
            sample = data[: 16 * 1024]
            last, primary = bwt_transform(sample)
            assert bwt_inverse(last, primary) == self.sequential_inverse(last, primary), name

    @given(st.binary(max_size=2048))
    @settings(max_examples=60, deadline=None)
    def test_property(self, data):
        last, primary = bwt_transform(data)
        assert bwt_inverse(last, primary) == self.sequential_inverse(last, primary)
