"""Canonical codec-parameter normalization (one helper, one spelling)."""

from collections import OrderedDict

from repro.compression.base import canonical_params, params_label


def test_empty_and_none_collapse():
    assert canonical_params(None) == ()
    assert canonical_params({}) == ()
    assert params_label(None) == "-"
    assert params_label({}) == "-"


def test_key_order_is_canonical():
    a = canonical_params({"level": 6, "window": 32768})
    b = canonical_params(OrderedDict([("window", 32768), ("level", 6)]))
    assert a == b
    assert params_label({"level": 6, "window": 32768}) == params_label(
        OrderedDict([("window", 32768), ("level", 6)])
    )


def test_integral_floats_normalize_to_int():
    assert canonical_params({"level": 6}) == canonical_params({"level": 6.0})
    # Non-integral floats stay floats — 6.5 is a different configuration.
    assert canonical_params({"level": 6.5}) != canonical_params({"level": 6})


def test_bool_is_not_an_int():
    # True == 1 in Python; a flag and a count must not share an entry.
    assert canonical_params({"flag": True}) != canonical_params({"flag": 1})


def test_nested_values_normalize_recursively():
    a = canonical_params({"tables": {"b": 2.0, "a": 1}, "order": [1, 2.0]})
    b = canonical_params({"order": (1, 2), "tables": {"a": 1, "b": 2}})
    assert a == b


def test_canonical_params_are_hashable():
    key = canonical_params({"tables": {"a": [1, 2]}, "level": 6.0})
    assert hash(key) == hash(canonical_params({"level": 6, "tables": {"a": (1, 2)}}))
    assert len({key, canonical_params({"level": 6, "tables": {"a": (1, 2)}})}) == 1


def test_label_is_stable_and_readable():
    label = params_label({"window": 32768, "level": 6})
    assert label == "level=6,window=32768"
    assert params_label({"table": "canonical"}) == "table='canonical'"
