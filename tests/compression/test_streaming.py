"""Unit tests for the framed streaming compression API."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CodecError, CorruptStreamError
from repro.compression.streaming import (
    StreamingCompressor,
    StreamingDecompressor,
)


def roundtrip(data, chunk=1000, block_size=4096, method="lempel-ziv", picker=None):
    compressor = StreamingCompressor(
        method=method, block_size=block_size, method_picker=picker
    )
    framed = bytearray()
    for start in range(0, len(data), chunk):
        framed += compressor.write(data[start : start + chunk])
    framed += compressor.flush()
    decompressor = StreamingDecompressor()
    out = bytearray()
    for start in range(0, len(framed), 777):  # deliberately odd chunking
        out += decompressor.write(bytes(framed[start : start + 777]))
    decompressor.close()
    return bytes(out), compressor, decompressor


class TestStreamingRoundtrip:
    def test_empty_stream(self):
        out, compressor, decompressor = roundtrip(b"")
        assert out == b""
        assert compressor.frames_emitted == 0
        assert decompressor.frames_decoded == 0

    def test_sub_block_stream(self):
        data = b"short message"
        out, compressor, _ = roundtrip(data)
        assert out == data
        assert compressor.frames_emitted == 1  # the flush frame

    def test_multi_block_stream(self, commercial_block):
        out, compressor, decompressor = roundtrip(commercial_block)
        assert out == commercial_block
        assert compressor.frames_emitted == decompressor.frames_decoded
        assert compressor.frames_emitted >= len(commercial_block) // 4096

    def test_exact_block_multiple(self):
        data = b"z" * 8192
        out, compressor, _ = roundtrip(data, block_size=4096)
        assert out == data
        assert compressor.frames_emitted == 2

    def test_ratio_tracks(self, commercial_block):
        _, compressor, _ = roundtrip(commercial_block)
        assert 0.1 < compressor.ratio < 0.9

    def test_per_block_method_picker(self, commercial_block, random_block):
        data = commercial_block[:8192] + random_block[:8192]
        chosen = []

        def picker(block):
            method = "lempel-ziv" if block.count(b"<") > 50 else "huffman"
            chosen.append(method)
            return method

        out, _, _ = roundtrip(data, block_size=8192, picker=picker)
        assert out == data
        assert set(chosen) == {"lempel-ziv", "huffman"}

    @pytest.mark.parametrize("method", ["none", "huffman", "lzw", "burrows-wheeler"])
    def test_all_methods(self, method, lowentropy_block):
        out, _, _ = roundtrip(lowentropy_block[:16384], method=method)
        assert out == lowentropy_block[:16384]

    @given(st.binary(max_size=20000), st.integers(min_value=1, max_value=5000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, data, chunk):
        out, _, _ = roundtrip(data, chunk=chunk)
        assert out == data


class TestStreamingEdgeCases:
    def test_write_after_flush_rejected(self):
        compressor = StreamingCompressor()
        compressor.flush()
        with pytest.raises(ValueError):
            compressor.write(b"more")

    def test_double_flush_is_empty(self):
        compressor = StreamingCompressor()
        compressor.write(b"abc")
        compressor.flush()
        assert compressor.flush() == b""

    def test_invalid_method_rejected_eagerly(self):
        with pytest.raises(CodecError):
            StreamingCompressor(method="rar")

    def test_tiny_block_size_rejected(self):
        with pytest.raises(ValueError):
            StreamingCompressor(block_size=100)

    def test_decompressor_waits_for_full_frame(self):
        compressor = StreamingCompressor(block_size=4096)
        framed = compressor.write(b"x" * 4096) + compressor.flush()
        decompressor = StreamingDecompressor()
        assert decompressor.write(framed[:3]) == b""
        assert decompressor.pending_bytes == 3
        assert decompressor.write(framed[3:]) == b"x" * 4096

    def test_close_mid_frame_raises(self):
        compressor = StreamingCompressor(block_size=4096)
        framed = compressor.write(b"y" * 4096) + compressor.flush()
        decompressor = StreamingDecompressor()
        decompressor.write(framed[:-2])
        with pytest.raises(CorruptStreamError):
            decompressor.close()

    def test_unknown_method_in_frame_raises(self):
        from repro.compression.varint import write_varint

        frame = bytearray()
        write_varint(frame, 4)
        frame += b"zstd"
        write_varint(frame, 0)
        with pytest.raises(CodecError):
            StreamingDecompressor().write(bytes(frame))

    def test_garbage_method_name_length_raises(self):
        # a huge name-length varint must be rejected, not buffered forever
        from repro.compression.varint import write_varint

        frame = bytearray()
        write_varint(frame, 10_000)
        frame += b"\x00" * 50
        with pytest.raises(CorruptStreamError):
            StreamingDecompressor().write(bytes(frame))
