"""Unit tests for the codec registry and the Codec/measure primitives."""

import math

import pytest

from repro.compression.base import Codec, CodecError, CompressionResult
from repro.core.engine import measure
from repro.compression.identity import IdentityCodec
from repro.compression.registry import (
    PAPER_METHODS,
    available_codecs,
    get_codec,
    register_codec,
    unregister_codec,
)


class TestRegistry:
    def test_paper_methods_all_registered(self):
        for name in PAPER_METHODS:
            assert get_codec(name).name == name

    def test_native_variants_registered(self):
        assert "lempel-ziv-native" in available_codecs()
        assert "burrows-wheeler-native" in available_codecs()

    def test_unknown_codec_raises(self):
        with pytest.raises(CodecError):
            get_codec("snappy")

    def test_instances_are_shared(self):
        assert get_codec("huffman") is get_codec("huffman")

    def test_register_and_unregister_custom(self):
        class Reverser(Codec):
            name = "reverser"

            def compress(self, data: bytes) -> bytes:
                return data[::-1]

            def decompress(self, payload: bytes) -> bytes:
                return payload[::-1]

        register_codec("reverser", Reverser)
        try:
            codec = get_codec("reverser")
            assert codec.decompress(codec.compress(b"abc")) == b"abc"
            assert "reverser" in available_codecs()
        finally:
            unregister_codec("reverser")
        with pytest.raises(CodecError):
            get_codec("reverser")

    def test_unregister_unknown_raises(self):
        with pytest.raises(CodecError):
            unregister_codec("never-existed")

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_codec("", IdentityCodec)

    def test_reregistration_replaces_instance(self):
        register_codec("temp", IdentityCodec)
        first = get_codec("temp")
        register_codec("temp", IdentityCodec)
        second = get_codec("temp")
        assert first is not second
        unregister_codec("temp")


class TestCompressionResult:
    def test_ratio_and_saved(self):
        result = CompressionResult("x", 1000, 400, 0.5)
        assert result.ratio == 0.4
        assert result.bytes_saved == 600
        assert result.reducing_speed == 1200.0
        assert result.throughput == 2000.0

    def test_expansion_clamps_saved(self):
        result = CompressionResult("x", 100, 150, 0.1)
        assert result.bytes_saved == 0
        assert result.reducing_speed == 0.0

    def test_empty_input_ratio(self):
        assert CompressionResult("x", 0, 0, 0.1).ratio == 1.0

    def test_zero_time_infinite_speed(self):
        result = CompressionResult("x", 100, 50, 0.0)
        assert math.isinf(result.reducing_speed)


class TestMeasure:
    def test_measure_identity(self):
        result = measure(IdentityCodec(), b"hello")
        assert result.codec_name == "none"
        assert result.original_size == result.compressed_size == 5
        assert result.payload == b"hello"
        assert result.elapsed_seconds >= 0

    def test_measure_without_payload(self):
        result = measure(IdentityCodec(), b"hello", keep_payload=False)
        assert result.payload is None

    def test_ratio_helper(self):
        assert IdentityCodec().ratio(b"abc") == 1.0
        assert IdentityCodec().ratio(b"") == 1.0
