"""Unit tests for the adaptive arithmetic codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.arithmetic import (
    AdaptiveByteModel,
    ArithmeticCodec,
    ContextArithmeticCodec,
)


class TestAdaptiveByteModel:
    def test_initial_uniform(self):
        model = AdaptiveByteModel()
        assert model.total == 257
        assert all(model.frequency(s) == 1 for s in (0, 100, 256))

    def test_cumulative_is_monotone(self):
        model = AdaptiveByteModel()
        values = [model.cumulative(s) for s in range(258)]
        assert values == sorted(values)
        assert values[0] == 0
        assert values[-1] == model.total

    def test_update_increases_frequency(self):
        model = AdaptiveByteModel()
        before = model.frequency(42)
        model.update(42)
        assert model.frequency(42) > before

    def test_find_inverts_cumulative(self):
        model = AdaptiveByteModel()
        for _ in range(50):
            model.update(7)
        for symbol in (0, 7, 8, 200, 256):
            low = model.cumulative(symbol)
            high = model.cumulative(symbol + 1)
            assert model.find(low) == symbol
            assert model.find(high - 1) == symbol

    def test_rescale_keeps_all_symbols_positive(self):
        model = AdaptiveByteModel()
        for _ in range(5000):
            model.update(1)
        assert model.frequency(255) >= 1
        assert model.frequency(1) > model.frequency(2)


class TestArithmeticCodec:
    def test_empty(self):
        codec = ArithmeticCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = ArithmeticCodec()
        assert codec.decompress(codec.compress(b"\x00")) == b"\x00"

    def test_roundtrip_corpus(self, corpus):
        codec = ArithmeticCodec()
        for name, data in corpus.items():
            sample = data[:8192]  # arithmetic is slow by design
            assert codec.decompress(codec.compress(sample)) == sample, name

    def test_low_entropy_beats_huffman_floor(self, lowentropy_block):
        # Arithmetic codes use fractional bits, so a skewed distribution
        # must compress below 1 bit/symbol where Huffman cannot.
        data = bytes(b % 2 for b in lowentropy_block[:8192])  # 2-symbol skew
        codec = ArithmeticCodec()
        compressed = codec.compress(data)
        assert len(compressed) < len(data) / 4

    def test_highly_compressible(self):
        codec = ArithmeticCodec()
        data = b"\x05" * 20000
        compressed = codec.compress(data)
        assert len(compressed) < 200
        assert codec.decompress(compressed) == data

    def test_adapts_to_shifting_distribution(self):
        codec = ArithmeticCodec()
        data = b"a" * 4000 + b"b" * 4000
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=1024))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        codec = ArithmeticCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestContextArithmeticCodec:
    def test_empty(self):
        codec = ContextArithmeticCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = ContextArithmeticCodec()
        assert codec.decompress(codec.compress(b"Q")) == b"Q"

    def test_roundtrip_corpus(self, corpus):
        codec = ContextArithmeticCodec()
        for name, data in corpus.items():
            sample = data[:6144]
            assert codec.decompress(codec.compress(sample)) == sample, name

    def test_order1_beats_order0_on_text(self, commercial_block):
        """Conditioning on the previous byte captures digraph structure."""
        sample = commercial_block[:16384]
        order0 = len(ArithmeticCodec().compress(sample))
        order1 = len(ContextArithmeticCodec().compress(sample))
        assert order1 < order0 * 0.85

    def test_deterministic_sequences_near_free(self):
        # 'abcabcabc...' is fully predicted by an order-1 model
        codec = ContextArithmeticCodec()
        data = b"abc" * 3000
        assert len(codec.compress(data)) < len(data) / 10

    def test_roundtrip_alternating_contexts(self):
        codec = ContextArithmeticCodec()
        data = bytes([0, 255] * 2000)
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=768))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        codec = ContextArithmeticCodec()
        assert codec.decompress(codec.compress(data)) == data
