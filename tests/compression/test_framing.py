"""Unit tests for the shared wire framing (repro.compression.framing).

The module is THE frame parser for the tree: block streaming, the event
transport's WireFormat and the TCP channel server all speak this layout,
so these tests cover both the codec-carrying use (method-name headers
across every registered codec) and the hostile-input bounds.
"""

import socket

import pytest

from repro.compression.base import CorruptStreamError
from repro.compression.framing import (
    DEFAULT_MAX_FRAME_SIZE,
    FLAG_CRC32,
    FRAME_V2_MAGIC,
    JUMBO_HEADER,
    MAX_METHOD_NAME,
    Frame,
    FrameDecoder,
    decode_frame,
    encode_block_frame,
    encode_frame,
    encode_frame_into,
    encode_frame_parts,
    encode_jumbo_frame,
    is_jumbo_frame,
    parse_frame,
    unpack_jumbo_frame,
)
from repro.compression.registry import available_codecs, get_codec
from repro.compression.streaming import StreamingCompressor
from repro.middleware.tcp import FrameReader


class TestFrameRoundTrip:
    def test_empty_header_and_payload(self):
        wire = encode_frame(b"", b"")
        frame, offset = decode_frame(wire)
        assert frame == Frame(header=b"", payload=b"")
        assert offset == len(wire)
        assert frame.wire_size == len(wire)

    def test_header_and_payload_recovered(self):
        wire = encode_frame(b'{"k": 1}', b"\x00\xffpayload")
        frame, offset = decode_frame(wire)
        assert frame.header == b'{"k": 1}'
        assert frame.payload == b"\x00\xffpayload"
        assert offset == len(wire)

    def test_wire_size_matches_encoding(self):
        for header, payload in [
            (b"", b""),
            (b"h", b"x" * 127),
            (b"hh", b"x" * 128),
            (b"hdr" * 50, b"y" * 20000),
        ]:
            frame, _ = decode_frame(encode_frame(header, payload))
            assert frame.wire_size == len(encode_frame(header, payload))

    def test_back_to_back_frames_with_offsets(self):
        wire = encode_frame(b"a", b"1") + encode_frame(b"b", b"22")
        first, offset = decode_frame(wire)
        second, end = decode_frame(wire, offset)
        assert (first.header, second.header) == (b"a", b"b")
        assert (first.payload, second.payload) == (b"1", b"22")
        assert end == len(wire)

    def test_method_round_trips_for_every_registered_codec(self):
        for name in available_codecs():
            frame, _ = decode_frame(encode_block_frame(name, b"payload"))
            assert frame.method == name

    def test_data_round_trips_through_every_lossless_codec(self, commercial_block):
        data = commercial_block[:8192]
        for name in available_codecs():
            codec = get_codec(name)
            if codec.family == "lossy":
                continue
            frame, _ = decode_frame(encode_block_frame(name, codec.compress(data)))
            assert get_codec(frame.method).decompress(frame.payload) == data

    def test_unframeable_method_names_rejected(self):
        with pytest.raises(ValueError):
            encode_block_frame("", b"x")
        with pytest.raises(ValueError):
            encode_block_frame("m" * (MAX_METHOD_NAME + 1), b"x")
        with pytest.raises(ValueError):
            encode_block_frame("méthode", b"x")


class TestFrameMethodHeader:
    def test_empty_header_is_not_a_method(self):
        with pytest.raises(CorruptStreamError):
            Frame(header=b"", payload=b"").method

    def test_oversized_header_is_not_a_method(self):
        with pytest.raises(CorruptStreamError):
            Frame(header=b"m" * (MAX_METHOD_NAME + 1), payload=b"").method

    def test_non_ascii_header_is_not_a_method(self):
        with pytest.raises(CorruptStreamError):
            Frame(header=b"\xff\xfe", payload=b"").method


class TestParseFrame:
    def test_incomplete_prefixes_return_none(self):
        wire = encode_frame(b"header", b"payload-bytes")
        for cut in range(len(wire)):
            assert parse_frame(wire[:cut]) is None

    def test_decode_frame_raises_on_truncation(self):
        wire = encode_frame(b"header", b"payload")
        with pytest.raises(CorruptStreamError):
            decode_frame(wire[:-1])

    def test_malformed_varint_raises(self):
        with pytest.raises(CorruptStreamError):
            parse_frame(b"\xff" * 12)

    def test_declared_header_beyond_limit_raises(self):
        wire = encode_frame(b"h" * 100, b"")
        with pytest.raises(CorruptStreamError):
            parse_frame(wire, max_header_size=10)

    def test_declared_payload_beyond_limit_raises(self):
        wire = encode_frame(b"h", b"p" * 100)
        with pytest.raises(CorruptStreamError):
            parse_frame(wire, max_frame_size=10)

    def test_hostile_length_raises_before_payload_arrives(self):
        # Only the *declared* length is present — the decoder must refuse
        # instead of waiting for (and buffering toward) 2**40 bytes.
        from repro.compression.varint import write_varint

        hostile = bytearray()
        write_varint(hostile, 4)
        hostile += b"name"
        write_varint(hostile, 2**40)
        with pytest.raises(CorruptStreamError):
            parse_frame(bytes(hostile))


class TestCheckedFrames:
    """The v2 integrity envelope: magic, flags, CRC32."""

    def test_default_encoding_is_v2(self):
        wire = encode_frame(b"hdr", b"payload")
        assert wire[: len(FRAME_V2_MAGIC)] == FRAME_V2_MAGIC
        frame, offset = decode_frame(wire)
        assert frame.checked
        assert offset == len(wire) == frame.wire_size

    def test_legacy_encoding_still_parses(self):
        wire = encode_frame(b"hdr", b"payload", check=False)
        assert wire[:1] != FRAME_V2_MAGIC[:1]
        frame, _ = decode_frame(wire)
        assert not frame.checked
        assert (frame.header, frame.payload) == (b"hdr", b"payload")

    def test_checked_excluded_from_equality(self):
        checked, _ = decode_frame(encode_frame(b"h", b"p"))
        legacy, _ = decode_frame(encode_frame(b"h", b"p", check=False))
        assert checked == legacy

    def test_single_corrupt_byte_anywhere_is_rejected(self):
        wire = encode_frame(b"method", b"payload bytes")
        # Flip one bit in every position past the envelope prefix; each
        # must either fail the CRC or corrupt the structure — never
        # decode silently into different bytes.
        prefix = len(FRAME_V2_MAGIC) + 1  # magic + flags varint
        for position in range(prefix, len(wire)):
            damaged = bytearray(wire)
            damaged[position] ^= 0xFF
            with pytest.raises(CorruptStreamError):
                decode_frame(bytes(damaged))

    def test_unknown_flags_rejected(self):
        wire = bytearray(encode_frame(b"h", b"p"))
        wire[len(FRAME_V2_MAGIC)] = FLAG_CRC32 | 0x02
        with pytest.raises(CorruptStreamError, match="unknown frame flags"):
            parse_frame(bytes(wire))

    def test_incomplete_v2_prefixes_return_none(self):
        wire = encode_frame(b"header", b"payload-bytes")
        for cut in range(len(wire)):  # includes lone 0x80 and missing CRC tail
            assert parse_frame(wire[:cut]) is None

    def test_v1_and_v2_interleave_in_one_stream(self):
        wire = (
            encode_frame(b"a", b"1")
            + encode_frame(b"b", b"22", check=False)
            + encode_block_frame("huffman", b"333")
        )
        frames = FrameDecoder().feed(wire)
        assert [f.payload for f in frames] == [b"1", b"22", b"333"]
        assert [f.checked for f in frames] == [True, False, True]

    def test_decoder_counts_rejected_frames(self):
        damaged = bytearray(encode_frame(b"h", b"payload"))
        damaged[-1] ^= 0xFF  # break the CRC
        decoder = FrameDecoder()
        with pytest.raises(CorruptStreamError):
            decoder.feed(bytes(damaged))
        assert decoder.frames_rejected == 1

    def test_overlong_varint_length_rejected(self):
        # \x81\x00 is a non-canonical two-byte encoding of 1.
        with pytest.raises(CorruptStreamError, match="non-canonical"):
            parse_frame(b"\x81\x00" + b"h" + b"\x01" + b"p")


class TestFrameDecoder:
    def test_byte_at_a_time_feed(self):
        wire = encode_frame(b"hdr", b"payload one") + encode_frame(b"", b"two")
        decoder = FrameDecoder()
        frames = []
        for i in range(len(wire)):
            frames += decoder.feed(wire[i : i + 1])
        assert [f.payload for f in frames] == [b"payload one", b"two"]
        assert decoder.pending_bytes == 0
        decoder.close()

    def test_multiple_frames_in_one_chunk(self):
        wire = b"".join(encode_frame(b"h", bytes([i])) for i in range(5))
        frames = FrameDecoder().feed(wire)
        assert [f.payload for f in frames] == [bytes([i]) for i in range(5)]

    def test_close_mid_frame_raises(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"h", b"payload")[:-2])
        assert decoder.pending_bytes > 0
        with pytest.raises(CorruptStreamError):
            decoder.close()

    def test_default_limit_is_16_mib(self):
        assert DEFAULT_MAX_FRAME_SIZE == 16 * 1024 * 1024
        assert FrameDecoder().max_frame_size == DEFAULT_MAX_FRAME_SIZE

    def test_oversized_declared_payload_raises_on_feed(self):
        decoder = FrameDecoder(max_frame_size=1024)
        with pytest.raises(CorruptStreamError):
            decoder.feed(encode_frame(b"h", b"x" * 2048)[:20])


class TestTransportInterop:
    def test_streaming_output_decodes_through_tcp_frame_reader(self):
        """A StreamingCompressor stream is parseable by the TCP-path reader."""
        original = b"interop between streaming and tcp framing " * 3000
        compressor = StreamingCompressor(method="lempel-ziv", block_size=32 * 1024)
        wire = compressor.write(original) + compressor.flush()

        left, right = socket.socketpair()
        try:
            left.sendall(wire)
            left.shutdown(socket.SHUT_WR)
            reader = FrameReader(right)
            restored = bytearray()
            frames = 0
            while True:
                frame = reader.next_frame()
                if frame is None:
                    break
                restored += get_codec(frame.method).decompress(frame.payload)
                frames += 1
        finally:
            left.close()
            right.close()
        assert bytes(restored) == original
        assert frames == compressor.frames_emitted


class TestZeroCopyParsing:
    """parse_frame returns lazy views by default; copy= is the escape hatch."""

    def test_default_parse_returns_readonly_views(self):
        wire = encode_frame(b"header", b"payload")
        frame, _ = decode_frame(wire)
        assert isinstance(frame.header, memoryview) and frame.header.readonly
        assert isinstance(frame.payload, memoryview) and frame.payload.readonly
        assert frame.header == b"header"
        assert frame.payload == b"payload"

    def test_views_alias_the_input_buffer(self):
        payload = bytes(range(256)) * 16
        wire = bytes(encode_frame(b"h", payload, check=False))
        frame, _ = decode_frame(wire)
        # Same memory, not a copy: mutating a writable input would show
        # through, so prove aliasing structurally instead.
        assert frame.payload.obj is wire
        assert frame.payload.nbytes == len(payload)

    def test_copy_true_returns_owned_bytes(self):
        wire = encode_frame(b"header", b"payload")
        frame, _ = decode_frame(wire, copy=True)
        assert isinstance(frame.header, bytes)
        assert isinstance(frame.payload, bytes)
        assert (frame.header, frame.payload) == (b"header", b"payload")

    def test_materialization_properties(self):
        frame, _ = decode_frame(encode_frame(b"hdr", b"pay"))
        assert isinstance(frame.header_bytes, bytes)
        assert isinstance(frame.payload_bytes, bytes)
        assert frame.header_bytes == b"hdr"
        assert frame.payload_bytes == b"pay"
        # Already-owned bytes pass through without another copy.
        owned = Frame(header=b"h", payload=b"p")
        assert owned.header_bytes is owned.header
        assert owned.payload_bytes is owned.payload

    def test_view_backed_frames_compare_equal_to_owned(self):
        wire = encode_frame(b"h", b"p")
        lazy, _ = decode_frame(wire)
        owned, _ = decode_frame(wire, copy=True)
        assert lazy == owned

    def test_decoder_views_survive_subsequent_feeds(self):
        # Frames from feed N must stay valid after feed N+1 (the decoder
        # never compacts a buffer live frames still view).
        decoder = FrameDecoder()
        first = decoder.feed(bytes(encode_frame(b"a", b"one")))
        second = decoder.feed(bytes(encode_frame(b"b", b"two")))
        assert first[0].payload == b"one"
        assert second[0].payload == b"two"

    def test_decoder_copy_mode_returns_owned_bytes(self):
        frames = FrameDecoder(copy=True).feed(bytes(encode_frame(b"h", b"p")))
        assert isinstance(frames[0].payload, bytes)

    def test_parse_accepts_any_buffer_type(self):
        wire = encode_frame(b"h", b"payload")
        for cast in (bytes, bytearray, lambda b: memoryview(bytes(b))):
            frame, _ = decode_frame(cast(wire))
            assert frame.payload == b"payload"


class TestGatherEncoding:
    """encode_frame_parts/encode_frame_into mirror encode_frame exactly."""

    def test_parts_join_to_the_contiguous_encoding(self):
        for check in (True, False):
            parts = encode_frame_parts(b"header", b"payload-bytes", check=check)
            assert b"".join(bytes(p) for p in parts) == bytes(
                encode_frame(b"header", b"payload-bytes", check=check)
            )

    def test_parts_reference_caller_buffers_unchanged(self):
        header, payload = b"hdr", b"x" * 4096
        parts = encode_frame_parts(header, payload)
        assert any(part is header for part in parts)
        assert any(part is payload for part in parts)

    def test_encode_into_appends_and_reports_length(self):
        out = bytearray(b"prefix")
        written = encode_frame_into(out, b"h", b"payload")
        assert written == len(out) - len(b"prefix")
        assert bytes(out[len(b"prefix"):]) == bytes(encode_frame(b"h", b"payload"))

    def test_memoryview_inputs_encode_identically(self):
        header, payload = b"hdr", b"payload bytes here"
        from_views = encode_frame(memoryview(header), memoryview(payload))
        assert bytes(from_views) == bytes(encode_frame(header, payload))


class TestJumboFrames:
    """Batch super-frames: envelope, verbatim members, hostile input."""

    def members(self, count=4):
        return [
            bytes(encode_frame(b'{"i": %d}' % i, bytes([i]) * (i + 1)))
            for i in range(count)
        ]

    def test_round_trip_recovers_members_in_order(self):
        members = self.members()
        jumbo, _ = decode_frame(encode_jumbo_frame(members))
        assert is_jumbo_frame(jumbo)
        unpacked = unpack_jumbo_frame(jumbo)
        assert [m.payload_bytes for m in unpacked] == [
            decode_frame(raw)[0].payload_bytes for raw in members
        ]

    def test_members_ride_verbatim(self):
        # The jumbo payload embeds each encoded member byte for byte, so
        # CRC chains over sliced members equal the unbatched chain.
        members = self.members()
        jumbo, _ = decode_frame(encode_jumbo_frame(members))
        assert b"".join(members) in jumbo.payload_bytes

    def test_jumbo_is_an_ordinary_checked_frame(self):
        jumbo, offset = decode_frame(encode_jumbo_frame(self.members()))
        assert jumbo.checked
        assert jumbo.header == JUMBO_HEADER

    def test_unpack_is_zero_copy(self):
        jumbo, _ = decode_frame(encode_jumbo_frame(self.members()))
        for member in unpack_jumbo_frame(jumbo):
            assert isinstance(member.payload, memoryview)

    def test_non_jumbo_frame_returns_none(self):
        plain, _ = decode_frame(encode_frame(b'{"k": 1}', b"payload"))
        assert not is_jumbo_frame(plain)
        assert unpack_jumbo_frame(plain) is None

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            encode_jumbo_frame([])

    def test_single_member_batch_round_trips(self):
        member = bytes(encode_frame(b"h", b"lone"))
        jumbo, _ = decode_frame(encode_jumbo_frame([member]))
        unpacked = unpack_jumbo_frame(jumbo)
        assert len(unpacked) == 1
        assert unpacked[0].payload == b"lone"

    def test_corrupt_member_attributed_not_whole_batch(self):
        # Damage one member's CRC *inside* the jumbo payload: the jumbo
        # envelope CRC is recomputed so only the inner parse fails.
        members = self.members()
        wire = bytearray(encode_jumbo_frame(members))
        import zlib

        from repro.compression.varint import write_varint

        jumbo, _ = decode_frame(bytes(wire))
        payload = bytearray(jumbo.payload_bytes)
        payload[-1] ^= 0xFF  # last byte of the last member's CRC
        rebuilt = bytearray()
        rebuilt += FRAME_V2_MAGIC
        write_varint(rebuilt, FLAG_CRC32)
        write_varint(rebuilt, len(JUMBO_HEADER))
        rebuilt += JUMBO_HEADER
        write_varint(rebuilt, len(payload))
        rebuilt += payload
        crc = zlib.crc32(payload, zlib.crc32(JUMBO_HEADER))
        rebuilt += crc.to_bytes(4, "little")
        damaged, _ = decode_frame(bytes(rebuilt))
        with pytest.raises(CorruptStreamError):
            unpack_jumbo_frame(damaged)

    def test_offset_table_extent_mismatch_rejected(self):
        import zlib

        from repro.compression.varint import write_varint

        members = self.members(2)
        payload = bytearray()
        write_varint(payload, 2)
        write_varint(payload, len(members[0]) + 1)  # lies about the extent
        write_varint(payload, len(members[1]))
        payload += members[0] + members[1] + b"\x00"
        rebuilt = bytearray()
        rebuilt += FRAME_V2_MAGIC
        write_varint(rebuilt, FLAG_CRC32)
        write_varint(rebuilt, len(JUMBO_HEADER))
        rebuilt += JUMBO_HEADER
        write_varint(rebuilt, len(payload))
        rebuilt += payload
        rebuilt += (
            zlib.crc32(payload, zlib.crc32(JUMBO_HEADER)).to_bytes(4, "little")
        )
        frame, _ = decode_frame(bytes(rebuilt))
        with pytest.raises(CorruptStreamError):
            unpack_jumbo_frame(frame)

    def test_jumbo_parses_through_the_frame_decoder(self):
        members = self.members(3)
        wire = bytes(encode_jumbo_frame(members)) + bytes(encode_frame(b"h", b"after"))
        frames = FrameDecoder().feed(wire)
        assert len(frames) == 2
        assert is_jumbo_frame(frames[0])
        assert len(unpack_jumbo_frame(frames[0])) == 3
        assert frames[1].payload == b"after"
