"""Unit tests for canonical length-limited Huffman coding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.bitio import BitReader, BitWriter
from repro.compression.huffman import (
    MAX_CODE_LENGTH,
    HuffmanCode,
    HuffmanCodec,
    StreamDecoder,
    huffman_code_lengths,
)


class TestCodeLengths:
    def test_empty_frequencies(self):
        assert huffman_code_lengths([0, 0, 0]) == [0, 0, 0]

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths([0, 5, 0]) == [0, 1, 0]

    def test_two_equal_symbols(self):
        assert huffman_code_lengths([3, 3]) == [1, 1]

    def test_skewed_distribution_gives_short_code_to_common_symbol(self):
        lengths = huffman_code_lengths([1000, 10, 10, 10])
        assert lengths[0] == min(lengths)

    def test_kraft_inequality_holds(self):
        lengths = huffman_code_lengths([5, 9, 12, 13, 16, 45])
        kraft = sum(2 ** (MAX_CODE_LENGTH - l) for l in lengths if l)
        assert kraft <= 2**MAX_CODE_LENGTH

    def test_optimal_for_classic_example(self):
        # Cover's classic: probabilities .25 .25 .2 .15 .15
        lengths = huffman_code_lengths([25, 25, 20, 15, 15])
        expected_cost = 25 * 2 + 25 * 2 + 20 * 2 + 15 * 3 + 15 * 3
        cost = sum(f * l for f, l in zip([25, 25, 20, 15, 15], lengths))
        assert cost == expected_cost

    def test_length_limiting_kicks_in_for_fibonacci_frequencies(self):
        # Fibonacci frequencies force a maximally skewed tree.
        fib = [1, 1]
        while len(fib) < 30:
            fib.append(fib[-1] + fib[-2])
        lengths = huffman_code_lengths(fib)
        assert max(lengths) <= MAX_CODE_LENGTH
        kraft = sum(2 ** (MAX_CODE_LENGTH - l) for l in lengths if l)
        assert kraft <= 2**MAX_CODE_LENGTH

    @given(st.lists(st.integers(min_value=0, max_value=10000), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_lengths_always_decodable(self, freqs):
        lengths = huffman_code_lengths(freqs)
        present = [l for l in lengths if l]
        if not present:
            return
        kraft = sum(2 ** (MAX_CODE_LENGTH - l) for l in present)
        assert kraft <= 2**MAX_CODE_LENGTH
        # every nonzero frequency must get a code, zero frequencies must not
        for freq, length in zip(freqs, lengths):
            assert (length > 0) == (freq > 0)


class TestHuffmanCode:
    def test_canonical_codes_are_prefix_free(self):
        code = HuffmanCode.from_frequencies([10, 7, 5, 2, 1])
        strings = [s for s in code.code_strings if s]
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                if i != j:
                    assert not b.startswith(a)

    def test_table_roundtrip(self):
        code = HuffmanCode.from_frequencies([3, 1, 4, 1, 5, 9, 2, 6])
        writer = BitWriter()
        code.write_table(writer)
        reader = BitReader(writer.getvalue())
        restored = HuffmanCode.read_table(reader, 8)
        assert restored.lengths == code.lengths
        assert restored.codes == code.codes

    def test_invalid_lengths_rejected(self):
        with pytest.raises(CorruptStreamError):
            HuffmanCode([MAX_CODE_LENGTH + 1])

    def test_kraft_violation_rejected(self):
        # three 1-bit codes cannot coexist
        with pytest.raises(CorruptStreamError):
            HuffmanCode([1, 1, 1])

    def test_encode_decode_symbols(self):
        symbols = [0, 1, 2, 1, 0, 0, 3, 2, 1, 0]
        code = HuffmanCode.from_symbols(symbols, 4)
        bits = code.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")
        decoded, end_bit = code.decode_symbols(data, 0, len(symbols))
        assert decoded == symbols
        assert end_bit == len(bits)

    def test_bitstring_matches_per_symbol_writer(self):
        # encode_bitstring is the one whole-block encoder; writing each
        # codeword through a BitWriter must produce the identical stream.
        symbols = [2, 0, 1, 1, 2, 2, 2]
        code = HuffmanCode.from_symbols(symbols, 3)
        writer = BitWriter()
        for sym in symbols:
            writer.write_bits(code.codes[sym], code.lengths[sym])
        bits = code.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        expected = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big") if bits else b""
        assert writer.getvalue() == expected

    def test_absent_symbol_has_no_codeword(self):
        code = HuffmanCode.from_frequencies([1, 1, 0])
        assert code.lengths[2] == 0
        assert code.code_strings[2] == ""

    def test_expected_bits(self):
        code = HuffmanCode.from_frequencies([1, 1])
        assert code.expected_bits([10, 20]) == 30

    def test_self_synchronization_from_wrong_offset(self):
        # Decoding from a shifted offset must lock back on: after a few
        # symbols the decoder tracks the true codeword boundaries (§2.4).
        symbols = ([0] * 50 + [1] * 25 + [2] * 12 + [3] * 6) * 30
        code = HuffmanCode.from_symbols(symbols, 4)
        bits = code.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")
        full, _ = code.decode_symbols(data, 0, len(symbols))
        shifted, _ = code.decode_symbols(data, 3, len(symbols) - 16)
        # The tail of the shifted decode must realign with the true stream.
        tail = shifted[-50:]
        text_full = "".join(map(str, full))
        assert "".join(map(str, tail)) in text_full


class TestStreamDecoder:
    def test_mixed_codes_and_raw_bits(self):
        code = HuffmanCode.from_frequencies([5, 3, 2])
        writer = BitWriter()
        for sym in (0, 2):
            writer.write_bits(code.codes[sym], code.lengths[sym])
        writer.write_bits(0b1011, 4)
        writer.write_bits(code.codes[1], code.lengths[1])
        decoder = StreamDecoder(writer.getvalue())
        assert decoder.read_code(code) == 0
        assert decoder.read_code(code) == 2
        assert decoder.read_bits(4) == 0b1011
        assert decoder.read_code(code) == 1

    def test_exhaustion_raises(self):
        decoder = StreamDecoder(b"")
        with pytest.raises(CorruptStreamError):
            decoder.read_bits(1)

    def test_bit_position_tracks(self):
        decoder = StreamDecoder(b"\xff\x00")
        decoder.read_bits(3)
        assert decoder.bit_position == 3


class TestHuffmanCodec:
    def test_empty(self):
        codec = HuffmanCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = HuffmanCodec()
        assert codec.decompress(codec.compress(b"z")) == b"z"

    def test_single_symbol_run(self):
        codec = HuffmanCodec()
        data = b"\x07" * 5000
        compressed = codec.compress(data)
        assert codec.decompress(compressed) == data
        assert len(compressed) < len(data) / 4

    def test_roundtrip_corpus(self, corpus):
        codec = HuffmanCodec()
        for name, data in corpus.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_low_entropy_compresses_well(self, lowentropy_block):
        codec = HuffmanCodec()
        assert codec.ratio(lowentropy_block) < 0.35

    def test_random_data_does_not_explode(self, random_block):
        codec = HuffmanCodec()
        assert codec.ratio(random_block) < 1.05

    def test_trailing_garbage_detected_for_empty(self):
        codec = HuffmanCodec()
        with pytest.raises(CorruptStreamError):
            codec.decompress(codec.compress(b"") + b"!")

    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = HuffmanCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestDecodeTableCache:
    def test_equal_length_codes_share_tables(self):
        from repro.compression.huffman import _decode_tables

        a = HuffmanCode.from_frequencies([10, 7, 5, 2, 1])
        b = HuffmanCode.from_frequencies([100, 70, 50, 20, 10])  # same shape
        assert a.lengths == b.lengths
        a._ensure_decode_table()
        b._ensure_decode_table()
        # lru_cache returns the identical table objects for identical keys.
        assert a._decode_symbols is b._decode_symbols
        assert a._decode_lengths is b._decode_lengths
        info = _decode_tables.cache_info()
        assert info.hits >= 1

    def test_cached_decode_stays_correct(self):
        symbols = [0, 1, 2, 1, 0, 3, 3, 3, 2]
        first = HuffmanCode.from_symbols(symbols, 4)
        second = HuffmanCode(list(first.lengths))  # cache hit path
        bits = first.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")
        decoded, _ = second.decode_symbols(data, 0, len(symbols))
        assert decoded == symbols
