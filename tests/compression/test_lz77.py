"""Unit tests for LZ77 with Huffman-coded pointers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.lz77 import (
    MAX_MATCH,
    MIN_MATCH,
    Lz77Codec,
    tokenize,
)


class TestTokenize:
    def test_no_repeats_all_literals(self):
        data = bytes(range(200))
        tokens = tokenize(data)
        assert all(isinstance(t, int) for t in tokens)
        assert bytes(tokens) == data

    def test_simple_repeat_produces_match(self):
        data = b"abcdefgh" * 10
        tokens = tokenize(data)
        matches = [t for t in tokens if isinstance(t, tuple)]
        assert matches, "repetition must produce at least one match"
        length, distance = matches[0]
        assert length >= MIN_MATCH
        assert distance >= 1

    def test_match_lengths_bounded(self):
        data = b"x" * 5000
        for token in tokenize(data):
            if isinstance(token, tuple):
                length, distance = token
                assert MIN_MATCH <= length <= MAX_MATCH
                assert distance >= 1

    def test_overlapping_match_self_reference(self):
        # 'aaaa...' forces distance < length (run encoding via overlap)
        data = b"a" * 300
        tokens = tokenize(data)
        assert any(isinstance(t, tuple) and t[1] < t[0] for t in tokens)

    def test_tokens_reconstruct_input(self):
        data = b"the quick brown fox " * 50 + b"jumps over the lazy dog" * 20
        out = bytearray()
        for token in tokenize(data):
            if isinstance(token, int):
                out.append(token)
            else:
                length, distance = token
                start = len(out) - distance
                for i in range(length):
                    out.append(out[start + i])
        assert bytes(out) == data

    def test_window_limits_match_distance(self):
        pattern = b"HELLOWORLD" + bytes(range(256)) * 8
        data = pattern + b"z" * 4096 + pattern
        for token in tokenize(data, window=1024):
            if isinstance(token, tuple):
                assert token[1] <= 1024


class TestLz77Codec:
    def test_empty(self):
        codec = Lz77Codec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = Lz77Codec()
        assert codec.decompress(codec.compress(b"q")) == b"q"

    def test_roundtrip_corpus(self, corpus):
        codec = Lz77Codec()
        for name, data in corpus.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_repetitive_data_compresses_well(self, commercial_block):
        codec = Lz77Codec()
        assert codec.ratio(commercial_block) < 0.5

    def test_beats_plain_huffman_on_repetitive_data(self, commercial_block):
        from repro.compression.huffman import HuffmanCodec

        lz = Lz77Codec().ratio(commercial_block)
        huff = HuffmanCodec().ratio(commercial_block)
        assert lz < huff  # Figure 2 ordering

    def test_random_data_overhead_bounded(self, random_block):
        codec = Lz77Codec()
        assert codec.ratio(random_block) < 1.05

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Lz77Codec(window=64)
        with pytest.raises(ValueError):
            Lz77Codec(window=10**6)

    def test_corrupted_stream_raises(self):
        codec = Lz77Codec()
        payload = bytearray(codec.compress(b"hello world, hello world, hello world"))
        payload[-1] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(payload))

    def test_length_mismatch_detected(self):
        codec = Lz77Codec()
        payload = bytearray(codec.compress(b"abcd" * 100))
        # corrupt the original-length varint (first byte)
        payload[0] = (payload[0] + 1) & 0x7F or 1
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(payload))

    def test_long_match_at_max_length(self):
        codec = Lz77Codec()
        data = b"0123456789abcdef" * 64  # 1024 bytes, long matches
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = Lz77Codec()
        assert codec.decompress(codec.compress(data)) == data

    @given(
        st.text(alphabet="ab", min_size=0, max_size=2000).map(str.encode),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_small_alphabet(self, data):
        # Small alphabets maximize overlapping self-referential matches.
        codec = Lz77Codec()
        assert codec.decompress(codec.compress(data)) == data
