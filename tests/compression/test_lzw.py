"""Unit tests for the LZW (LZ78-family) codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.lzw import MAX_CODE_BITS, LzwCodec


class TestLzwCodec:
    def test_empty(self):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(b"A")) == b"A"

    def test_two_identical_bytes_kwkwk_seed(self):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(b"aa")) == b"aa"

    def test_kwkwk_pattern(self):
        # 'abababab...' exercises the code==len(strings) special case.
        codec = LzwCodec()
        data = b"ab" * 2000
        assert codec.decompress(codec.compress(data)) == data

    def test_roundtrip_corpus(self, corpus):
        codec = LzwCodec()
        for name, data in corpus.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_dictionary_reset_path(self):
        # Force enough distinct phrases to fill the 2**14 dictionary.
        codec = LzwCodec()
        import random

        rng = random.Random(9)
        data = bytes(rng.getrandbits(8) for _ in range(80000))
        assert codec.decompress(codec.compress(data)) == data

    def test_width_growth_boundaries(self):
        # Data sized to cross the 9->10 bit widening boundary (~256 phrases).
        codec = LzwCodec()
        data = bytes(range(256)) * 8
        assert codec.decompress(codec.compress(data)) == data

    def test_compresses_repetitive_text(self, commercial_block):
        codec = LzwCodec()
        ratio = codec.ratio(commercial_block)
        assert ratio < 0.6

    def test_lz77_beats_lzw_on_long_range_matches(self, commercial_block):
        # LZ77's 32 KB window catches long-range repeats LZW's phrase
        # dictionary cannot, which is why the paper's main method is LZ77.
        from repro.compression.lz77 import Lz77Codec

        assert Lz77Codec().ratio(commercial_block) < LzwCodec().ratio(commercial_block)

    def test_truncated_stream_raises(self):
        codec = LzwCodec()
        payload = codec.compress(b"hello hello hello")
        with pytest.raises(CorruptStreamError):
            codec.decompress(payload[: len(payload) // 2])

    def test_max_code_bits_sane(self):
        assert 10 <= MAX_CODE_BITS <= 20

    @given(st.binary(max_size=4096))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(data)) == data

    @given(st.text(alphabet="abc", max_size=3000).map(str.encode))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_small_alphabet(self, data):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(data)) == data


class TestTailWidthBoundary:
    """Regression: streams ending exactly at a dictionary-widening point.

    The decoder appends a phantom dictionary entry after the final real
    code (it lags the encoder by one assignment), so the encoder must
    mirror that append before choosing the EOF width.  Found by the
    conformance kit: 16257 bytes of period-2 input made the decoder read
    EOF at 10 bits where the encoder wrote 9.
    """

    def test_exact_boundary_length(self):
        codec = LzwCodec()
        data = (b"ab" * 16257)[:16257]
        assert codec.decompress(codec.compress(data)) == data

    def test_lengths_around_every_widening_point(self):
        codec = LzwCodec()
        # Period-2 input emits one code per new pair, so dictionary growth
        # tracks input length closely; sweep a window around the 512-entry
        # boundary where the bug lived, plus the next power of two.
        for n in list(range(16240, 16280)) + list(range(65270, 65290)):
            data = (b"ab" * n)[:n]
            assert codec.decompress(codec.compress(data)) == data, n

    def test_single_emit_stream_unaffected(self):
        codec = LzwCodec()
        assert codec.decompress(codec.compress(b"q")) == b"q"
