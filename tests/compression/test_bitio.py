"""Unit tests for the bit-level I/O primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_bit_pads_to_one_byte(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == b"\x80"

    def test_eight_bits_msb_first(self):
        writer = BitWriter()
        for bit in [1, 0, 1, 0, 1, 0, 1, 0]:
            writer.write_bit(bit)
        assert writer.getvalue() == b"\xaa"

    def test_write_bits_crosses_byte_boundaries(self):
        writer = BitWriter()
        writer.write_bits(0xABC, 12)
        writer.write_bits(0xD, 4)
        assert writer.getvalue() == b"\xab\xcd"

    def test_write_bits_masks_extra_high_bits(self):
        writer = BitWriter()
        writer.write_bits(0xFFF, 4)  # only low 4 bits survive
        assert writer.getvalue() == b"\xf0"

    def test_zero_width_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(123, 0)
        assert writer.bit_length == 0

    def test_negative_width_rejected(self):
        with pytest.raises(ValueError):
            BitWriter().write_bits(1, -1)

    def test_bit_length_tracks_writes(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        writer.write_bit(0)
        assert writer.bit_length == 4

    def test_unary_roundtrip(self):
        writer = BitWriter()
        for value in [0, 1, 5, 13]:
            writer.write_unary(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_unary() for _ in range(4)] == [0, 1, 5, 13]

    def test_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            BitWriter().write_unary(-1)

    def test_gamma_roundtrip(self):
        writer = BitWriter()
        values = [1, 2, 3, 7, 100, 65535]
        for value in values:
            writer.write_gamma(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_gamma() for _ in range(len(values))] == values

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            BitWriter().write_gamma(0)


class TestBitReader:
    def test_read_bits_matches_written(self):
        writer = BitWriter()
        writer.write_bits(0b1011001, 7)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(7) == 0b1011001

    def test_read_past_end_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_read_bits_past_end_raises(self):
        with pytest.raises(EOFError):
            BitReader(b"\xff").read_bits(9)

    def test_zero_width_read(self):
        assert BitReader(b"").read_bits(0) == 0

    def test_start_bit_offset(self):
        reader = BitReader(b"\x0f", start_bit=4)
        assert reader.read_bits(4) == 0xF

    def test_seek(self):
        reader = BitReader(b"\xa5")
        reader.read_bits(8)
        reader.seek(0)
        assert reader.read_bits(8) == 0xA5

    def test_seek_out_of_range(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00").seek(9)

    def test_position_and_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(5)
        assert reader.position == 5
        assert reader.remaining == 11


class TestRoundTrip:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**24 - 1),
                              st.integers(min_value=1, max_value=24))))
    def test_write_read_sequence(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value & ((1 << width) - 1), width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value & ((1 << width) - 1)

    @given(st.binary(max_size=256))
    def test_bytes_through_bits(self, data):
        writer = BitWriter()
        for byte in data:
            writer.write_bits(byte, 8)
        assert writer.getvalue() == data
