"""The optional native codec tier: gating when absent, fidelity when present.

The zstd/lz4 codecs are optional by contract: without a binding the
classes stay importable, ``HAVE_ZSTD``/``HAVE_LZ4`` are False, and every
consumer (registry, candidate grids, policy method maps) either skips
the tier or fails eagerly with a clear error.  The always-run tests here
pin that contract on whichever side this environment happens to be; the
``skipif`` tests exercise the codecs themselves when a binding exists
(CI's native-codecs leg installs both).
"""

import pytest

from repro.compression.base import CodecError, CorruptStreamError
from repro.compression.native import (
    HAVE_LZ4,
    HAVE_ZSTD,
    NativeLz4Codec,
    NativeZstdCodec,
)
from repro.compression.registry import available_codecs, get_codec
from repro.core.bicriteria import default_candidates
from repro.core.policy import AdaptivePolicy
from repro.verify.differential import REFERENCE_COUNTERPARTS


class TestRegistration:
    def test_registered_exactly_when_binding_present(self):
        codecs = set(available_codecs())
        assert ("zstd-native" in codecs) == HAVE_ZSTD
        assert ("lz4-native" in codecs) == HAVE_LZ4

    def test_differential_oracle_tracks_registration(self):
        assert ("zstd-native" in REFERENCE_COUNTERPARTS) == HAVE_ZSTD
        assert ("lz4-native" in REFERENCE_COUNTERPARTS) == HAVE_LZ4


class TestCandidateGrid:
    def test_native_false_pins_pure_python(self):
        methods = {spec.method for spec in default_candidates(native=False)}
        assert "zstd-native" not in methods
        assert "lz4-native" not in methods

    def test_native_none_follows_the_flags(self):
        methods = {spec.method for spec in default_candidates()}
        assert ("zstd-native" in methods) == HAVE_ZSTD
        assert ("lz4-native" in methods) == HAVE_LZ4

    @pytest.mark.skipif(HAVE_ZSTD and HAVE_LZ4, reason="both bindings present")
    def test_native_true_without_bindings_fails_eagerly(self):
        with pytest.raises(CodecError, match="not registered"):
            default_candidates(native=True)

    @pytest.mark.skipif(not (HAVE_ZSTD and HAVE_LZ4), reason="needs both bindings")
    def test_native_true_with_bindings_includes_the_tier(self):
        methods = {spec.method for spec in default_candidates(native=True)}
        assert {"zstd-native", "lz4-native"} <= methods


class TestPolicyMethodMap:
    def test_unregistered_target_rejected_at_construction(self):
        missing = "lz4-native" if not HAVE_LZ4 else "no-such-codec"
        with pytest.raises(CodecError):
            AdaptivePolicy(method_map={"lempel-ziv": missing})

    def test_mapped_method_replaces_the_table_choice(self):
        # Remap to a codec that is always registered so the test runs on
        # both sides of the binding divide; the mechanism is identical
        # for zstd-native/lz4-native targets.
        from repro.core.monitor import ReducingSpeedMonitor

        monitor = ReducingSpeedMonitor()
        chosen = AdaptivePolicy().choose(128 * 1024, 0.5, monitor, None).method
        assert chosen != "none"  # precondition: the table picked a codec
        policy = AdaptivePolicy(method_map={chosen: "lempel-ziv-native"})
        mapped = policy.choose(128 * 1024, 0.5, monitor, None)
        assert mapped.method == "lempel-ziv-native"

    def test_unmapped_methods_pass_through(self):
        from repro.core.monitor import ReducingSpeedMonitor

        monitor = ReducingSpeedMonitor()
        policy = AdaptivePolicy(method_map={"lzw": "lempel-ziv-native"})
        plain = AdaptivePolicy()
        for sending_time in (0.0001, 0.5):
            assert (
                policy.choose(128 * 1024, sending_time, monitor, None).method
                == plain.choose(128 * 1024, sending_time, monitor, None).method
            )


@pytest.mark.skipif(HAVE_ZSTD, reason="zstd binding present")
class TestZstdAbsent:
    def test_constructor_raises_runtime_error(self):
        with pytest.raises(RuntimeError, match="zstd"):
            NativeZstdCodec()

    def test_not_in_registry(self):
        with pytest.raises(CodecError):
            get_codec("zstd-native")


@pytest.mark.skipif(HAVE_LZ4, reason="lz4 binding present")
class TestLz4Absent:
    def test_constructor_raises_runtime_error(self):
        with pytest.raises(RuntimeError, match="lz4"):
            NativeLz4Codec()

    def test_not_in_registry(self):
        with pytest.raises(CodecError):
            get_codec("lz4-native")


@pytest.mark.skipif(not HAVE_ZSTD, reason="no zstd binding")
class TestZstdPresent:
    def test_round_trip(self, commercial_block):
        codec = get_codec("zstd-native")
        data = commercial_block[:32768]
        wire = codec.compress(data)
        assert len(wire) < len(data)
        assert codec.decompress(wire) == data

    def test_buffer_protocol_inputs_identical(self, commercial_block):
        codec = get_codec("zstd-native")
        data = commercial_block[:8192]
        baseline = codec.compress(data)
        assert codec.compress(bytearray(data)) == baseline
        assert codec.compress(memoryview(data)) == baseline

    def test_corruption_rejected_with_contract_error(self, commercial_block):
        codec = get_codec("zstd-native")
        wire = bytearray(codec.compress(commercial_block[:8192]))
        wire[len(wire) // 2] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(wire))

    def test_level_validated(self):
        with pytest.raises(ValueError):
            NativeZstdCodec(level=0)
        with pytest.raises(ValueError):
            NativeZstdCodec(level=20)


@pytest.mark.skipif(not HAVE_LZ4, reason="no lz4 binding")
class TestLz4Present:
    def test_round_trip(self, commercial_block):
        codec = get_codec("lz4-native")
        data = commercial_block[:32768]
        wire = codec.compress(data)
        assert len(wire) < len(data)
        assert codec.decompress(wire) == data

    def test_buffer_protocol_inputs_identical(self, commercial_block):
        codec = get_codec("lz4-native")
        data = commercial_block[:8192]
        baseline = codec.compress(data)
        assert codec.compress(bytearray(data)) == baseline
        assert codec.compress(memoryview(data)) == baseline

    def test_corruption_rejected_with_contract_error(self, commercial_block):
        codec = get_codec("lz4-native")
        wire = bytearray(codec.compress(commercial_block[:8192]))
        wire[len(wire) // 2] ^= 0xFF
        with pytest.raises(CorruptStreamError):
            codec.decompress(bytes(wire))

    def test_level_validated(self):
        with pytest.raises(ValueError):
            NativeLz4Codec(compression_level=-1)
        with pytest.raises(ValueError):
            NativeLz4Codec(compression_level=17)
