"""Unit tests for parallel compression and parallel Huffman decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.huffman import HuffmanCode, HuffmanCodec
from repro.compression.identity import IdentityCodec
from repro.compression.lz77 import Lz77Codec
from repro.compression.parallel import (
    ParallelCodec,
    huffman_segment_table,
    parallel_huffman_decode,
)


class TestParallelCodec:
    def codec(self, chunk_size=4096, workers=3):
        return ParallelCodec(Lz77Codec(), chunk_size=chunk_size, workers=workers)

    def test_name_reflects_base(self):
        assert self.codec().name == "parallel:lempel-ziv"

    def test_empty(self):
        codec = self.codec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_chunk(self):
        codec = self.codec()
        data = b"small payload"
        assert codec.decompress(codec.compress(data)) == data

    def test_multi_chunk_roundtrip(self, commercial_block):
        codec = self.codec()
        assert codec.decompress(codec.compress(commercial_block)) == commercial_block

    def test_exact_chunk_boundary(self):
        codec = self.codec(chunk_size=1024)
        data = b"x" * 4096
        assert codec.decompress(codec.compress(data)) == data

    def test_roundtrip_corpus(self, corpus):
        codec = self.codec()
        for name, data in corpus.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_ratio_close_to_sequential(self, commercial_block):
        parallel_ratio = self.codec(chunk_size=16384).ratio(commercial_block)
        sequential_ratio = Lz77Codec().ratio(commercial_block)
        # chunking costs some context; the overhead must stay modest
        assert parallel_ratio < sequential_ratio + 0.08

    def test_random_access_chunk(self, commercial_block):
        codec = self.codec(chunk_size=8192)
        payload = codec.compress(commercial_block)
        third_chunk = codec.decompress_chunk(payload, 2)
        assert third_chunk == commercial_block[2 * 8192 : 3 * 8192]

    def test_random_access_out_of_range(self):
        codec = self.codec()
        payload = codec.compress(b"abc")
        with pytest.raises(IndexError):
            codec.decompress_chunk(payload, 5)

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptStreamError):
            self.codec().decompress(b"XXXX\x00")

    def test_truncated_container_rejected(self):
        payload = self.codec().compress(b"hello world " * 500)
        with pytest.raises(CorruptStreamError):
            self.codec().decompress(payload[:-4])

    def test_trailing_garbage_rejected(self):
        payload = self.codec().compress(b"hello world " * 50)
        with pytest.raises(CorruptStreamError):
            self.codec().decompress(payload + b"!")

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ParallelCodec(IdentityCodec(), chunk_size=100)
        with pytest.raises(ValueError):
            ParallelCodec(IdentityCodec(), workers=0)

    def test_works_with_any_base(self, lowentropy_block):
        for base in (IdentityCodec(), HuffmanCodec()):
            codec = ParallelCodec(base, chunk_size=4096)
            assert codec.decompress(codec.compress(lowentropy_block)) == lowentropy_block

    @given(st.binary(max_size=20000))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        codec = ParallelCodec(Lz77Codec(), chunk_size=2048, workers=2)
        assert codec.decompress(codec.compress(data)) == data


def _encode(symbols, alphabet=256):
    code = HuffmanCode.from_symbols(symbols, alphabet)
    bits = code.encode_bitstring(symbols)
    padding = (-len(bits)) % 8
    data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")
    return code, data


class TestParallelHuffmanDecode:
    def _skewed_symbols(self, n=30000):
        return ([0] * 8 + [1] * 4 + [2] * 2 + [3]) * (n // 15)

    def test_matches_sequential(self):
        symbols = self._skewed_symbols()
        code, data = _encode(symbols, 4)
        decoded = parallel_huffman_decode(code, data, len(symbols), segments=5)
        assert decoded == symbols

    def test_single_segment_degenerates_to_sequential(self):
        symbols = self._skewed_symbols(3000)
        code, data = _encode(symbols, 4)
        assert parallel_huffman_decode(code, data, len(symbols), segments=1) == symbols

    @pytest.mark.parametrize("segments", [2, 3, 4, 8, 16])
    def test_various_segment_counts(self, segments):
        symbols = self._skewed_symbols(12000)
        code, data = _encode(symbols, 4)
        assert (
            parallel_huffman_decode(code, data, len(symbols), segments=segments)
            == symbols
        )

    def test_more_segments_than_bytes(self):
        symbols = [0, 1, 0, 0, 1]
        code, data = _encode(symbols, 2)
        assert parallel_huffman_decode(code, data, len(symbols), segments=64) == symbols

    def test_real_text(self, commercial_block):
        symbols = list(commercial_block[:40000])
        code, data = _encode(symbols)
        assert parallel_huffman_decode(code, data, len(symbols), segments=6) == symbols

    def test_zero_symbols(self):
        code, data = _encode([0, 1], 2)
        assert parallel_huffman_decode(code, data, 0) == []

    def test_count_beyond_stream_raises(self):
        symbols = [0, 1] * 50
        code, data = _encode(symbols, 2)
        with pytest.raises(CorruptStreamError):
            parallel_huffman_decode(code, data, 10**6, segments=3)

    def test_invalid_segments(self):
        code, data = _encode([0, 1], 2)
        with pytest.raises(ValueError):
            parallel_huffman_decode(code, data, 2, segments=0)

    def test_segment_table_spillover_lands_on_boundary(self):
        symbols = self._skewed_symbols(4000)
        code, data = _encode(symbols, 4)
        boundaries, decoded, final_bit = huffman_segment_table(code, data, 0, 100)
        assert boundaries[0] == 0
        assert final_bit >= 100
        assert len(decoded) == len(boundaries)

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=4000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, symbols):
        code, data = _encode(symbols)
        decoded = parallel_huffman_decode(code, data, len(symbols), segments=4)
        assert decoded == symbols


class TestParallelHuffmanEdgeCases:
    """Degenerate streams: empty input, single-segment, and speculation
    that never synchronizes (forcing the sequential re-decode path)."""

    def test_empty_input_zero_symbols(self):
        code, _ = _encode([0, 1], 2)
        assert parallel_huffman_decode(code, b"", 0) == []
        assert parallel_huffman_decode(code, b"", 0, segments=8) == []

    def test_empty_input_with_symbols_expected_raises(self):
        code, _ = _encode([0, 1], 2)
        with pytest.raises(CorruptStreamError):
            parallel_huffman_decode(code, b"", 1, segments=4)

    def test_stream_shorter_than_one_segment(self):
        # 3 one-bit symbols fit in a single byte, so even segments=4
        # collapses to a single speculative segment.
        symbols = [0, 1, 0]
        code, data = _encode(symbols, 2)
        assert len(data) == 1
        assert parallel_huffman_decode(code, data, len(symbols), segments=4) == symbols

    def _fixed_length_code(self):
        """A 32-symbol uniform alphabet yields 5-bit fixed-length codes.

        Fixed-length codes never self-synchronize: a speculative decode
        entering at a byte boundary that is not a multiple of the code
        length stays mis-aligned forever, so stitching must fall back to
        the sequential re-decode path for the whole segment.
        """
        symbols = list(range(32)) * 126  # uniform frequencies -> balanced tree
        code = HuffmanCode.from_symbols(symbols, 32)
        for symbol in range(32):
            assert len(code.encode_bitstring([symbol])) == 5
        return code

    def test_never_synchronizing_speculation_is_discarded(self):
        code = self._fixed_length_code()
        symbols = [(i * 7) % 32 for i in range(4001)]
        bits = code.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")

        # A segment starting at bit 5008 (byte 626, != 0 mod 5) speculates
        # boundaries all congruent to 3 mod 5 — never a true boundary.
        boundaries, _, _ = huffman_segment_table(code, data, 5008, 5008 + 400)
        assert boundaries
        assert all(bit % 5 == 3 for bit in boundaries)

        # 4001 symbols * 5 bits pad to 2501 bytes, making every interior
        # segment start land off the 5-bit grid; the decode must still be
        # exact via sequential re-decode of the unsynchronized segments.
        total_bits = len(data) * 8
        span = ((total_bits // 4) + 7) & ~7
        starts = [index * span for index in range(1, 4) if index * span < total_bits]
        assert starts, "expected interior segment starts"
        assert all(start % 5 != 0 for start in starts)
        decoded = parallel_huffman_decode(code, data, len(symbols), segments=4)
        assert decoded == symbols

    @pytest.mark.parametrize("segments", [2, 3, 8])
    def test_never_synchronizing_various_segment_counts(self, segments):
        code = self._fixed_length_code()
        symbols = [(i * 11) % 32 for i in range(1603)]
        bits = code.encode_bitstring(symbols)
        padding = (-len(bits)) % 8
        data = int(bits + "0" * padding, 2).to_bytes((len(bits) + padding) // 8, "big")
        decoded = parallel_huffman_decode(code, data, len(symbols), segments=segments)
        assert decoded == symbols


class TestPoolStrategies:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            ParallelCodec(Lz77Codec(), strategy="green-threads")

    @pytest.mark.parametrize("strategy", ["threads", "processes", "serial"])
    def test_wire_bytes_identical_across_strategies(self, strategy, corpus):
        data = corpus["commercial"][: 96 * 1024]
        reference = ParallelCodec(Lz77Codec(), strategy="serial").compress(data)
        codec = ParallelCodec(Lz77Codec(), strategy=strategy)
        payload = codec.compress(data)
        assert payload == reference
        assert codec.decompress(payload) == data

    def test_process_strategy_decompresses_serial_payload(self, corpus):
        data = corpus["lowentropy"][: 64 * 1024]
        payload = ParallelCodec(Lz77Codec(), strategy="serial").compress(data)
        assert ParallelCodec(Lz77Codec(), strategy="processes").decompress(payload) == data

    def test_broken_pool_degrades_to_serial(self, corpus):
        data = corpus["commercial"][: 64 * 1024]
        reference = ParallelCodec(Lz77Codec(), strategy="serial").compress(data)
        codec = ParallelCodec(Lz77Codec(), strategy="processes")
        codec._make_executor = lambda: (_ for _ in ()).throw(OSError("fork failed"))
        assert codec.compress(data) == reference
        assert codec.strategy == "serial"
        assert codec.degradations == 1
        # Degraded codec keeps working without a pool.
        assert codec.decompress(reference) == data
