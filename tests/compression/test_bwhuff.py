"""Unit tests for the modified Burrows-Wheeler codec (chunked, resyncable)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.bwhuff import (
    CHUNK_TERMINATOR,
    BurrowsWheelerCodec,
    _decode_primary,
    _encode_primary,
)


class TestPrimaryDigits:
    @pytest.mark.parametrize("value", [0, 1, 253, 254, 65535, 254**3 - 1])
    def test_roundtrip(self, value):
        assert _decode_primary(_encode_primary(value)) == value

    def test_digits_avoid_reserved_bytes(self):
        for value in (0, 254, 255, 100000):
            digits = _encode_primary(value)
            assert all(d < 254 for d in digits)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            _encode_primary(254**3)

    def test_invalid_digit_rejected(self):
        with pytest.raises(CorruptStreamError):
            _decode_primary(bytes([255, 0, 0]))


class TestBurrowsWheelerCodec:
    def test_empty(self):
        codec = BurrowsWheelerCodec()
        assert codec.decompress(codec.compress(b"")) == b""

    def test_single_byte(self):
        codec = BurrowsWheelerCodec()
        assert codec.decompress(codec.compress(b"!")) == b"!"

    def test_roundtrip_corpus(self, corpus):
        codec = BurrowsWheelerCodec()
        for name, data in corpus.items():
            assert codec.decompress(codec.compress(data)) == data, name

    def test_multi_chunk_roundtrip(self, commercial_block):
        codec = BurrowsWheelerCodec(chunk_size=4096)
        assert codec.decompress(codec.compress(commercial_block)) == commercial_block

    def test_chunk_boundary_sizes(self):
        codec = BurrowsWheelerCodec(chunk_size=1024)
        for size in (1023, 1024, 1025, 2048, 2049):
            data = bytes(i % 251 for i in range(size))
            assert codec.decompress(codec.compress(data)) == data

    def test_best_ratio_on_repetitive_data(self, commercial_block):
        from repro.compression.huffman import HuffmanCodec
        from repro.compression.lz77 import Lz77Codec

        bw = BurrowsWheelerCodec().ratio(commercial_block)
        lz = Lz77Codec().ratio(commercial_block)
        huff = HuffmanCodec().ratio(commercial_block)
        assert bw <= lz <= huff  # Figure 2 ordering

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BurrowsWheelerCodec(chunk_size=16)
        with pytest.raises(ValueError):
            BurrowsWheelerCodec(chunk_size=254**3)

    def test_truncated_stream_raises(self):
        codec = BurrowsWheelerCodec()
        compressed = codec.compress(b"some data worth compressing " * 100)
        with pytest.raises((CorruptStreamError, EOFError)):
            codec.decompress(compressed[: len(compressed) // 2])

    def test_trailing_bytes_on_empty_raises(self):
        codec = BurrowsWheelerCodec()
        with pytest.raises(CorruptStreamError):
            codec.decompress(codec.compress(b"") + b"\x01")

    @given(st.binary(max_size=3000))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        codec = BurrowsWheelerCodec(chunk_size=512)
        assert codec.decompress(codec.compress(data)) == data


class TestResynchronization:
    """Paper §2.4: decode from an arbitrary point, recover later chunks."""

    def _payload(self, chunks=8, chunk_size=1024):
        codec = BurrowsWheelerCodec(chunk_size=chunk_size)
        data = (b"chunky synchronized burrows wheeler stream | " * 200)[
            : chunks * chunk_size
        ]
        return codec, data, codec.compress(data)

    def test_decode_from_start_recovers_everything(self):
        codec, data, payload = self._payload()
        recovered, count = codec.decode_from(payload, 0)
        assert recovered == data
        assert count == 8

    def test_decode_from_middle_recovers_suffix(self):
        codec, data, payload = self._payload()
        start_bit = (len(payload) // 2) * 8
        recovered, count = codec.decode_from(payload, start_bit)
        assert 0 < count < 8
        assert recovered
        # Recovered chunks must be a contiguous suffix-aligned slice of the
        # original data (whole chunks, in order).
        assert recovered in data

    def test_decode_from_unaligned_bit_offset(self):
        codec, data, payload = self._payload()
        start_bit = (len(payload) // 2) * 8 + 3  # mid-byte: forces resync
        recovered, count = codec.decode_from(payload, start_bit)
        assert count >= 1
        assert recovered in data

    def test_decode_from_empty_payload(self):
        codec = BurrowsWheelerCodec()
        recovered, count = codec.decode_from(codec.compress(b""), 0)
        assert recovered == b""
        assert count == 0

    def test_terminator_never_in_chunk_bodies(self):
        codec = BurrowsWheelerCodec(chunk_size=512)
        data = bytes(range(256)) * 8
        # reconstruct the joint symbol stream by decompressing internals:
        # simply assert the public invariant instead — decode_from at 0
        # splits into exactly the expected number of chunks.
        payload = codec.compress(data)
        _, count = codec.decode_from(payload, 0)
        assert count == len(data) // 512


class TestResumeAtBlockBoundaries:
    """Sweep start offsets: recovery is always a chunk-aligned suffix.

    The 255 terminator is the only place a resynchronizing decoder may
    re-anchor, so whatever bit we start from, the recovered bytes must be
    exactly the last ``count`` whole chunks — never a partial chunk, never
    out-of-order data.
    """

    CHUNK = 1024
    CHUNKS = 6

    def _payload(self):
        codec = BurrowsWheelerCodec(chunk_size=self.CHUNK)
        data = (b"resume at arbitrary block boundaries | " * 400)[
            : self.CHUNKS * self.CHUNK
        ]
        return codec, data, codec.compress(data)

    def test_every_byte_offset_yields_chunk_aligned_suffix(self):
        codec, data, payload = self._payload()
        suffixes = {
            data[k * self.CHUNK :]: self.CHUNKS - k for k in range(self.CHUNKS + 1)
        }
        for start_byte in range(0, len(payload), 97):  # prime stride sweep
            recovered, count = codec.decode_from(payload, start_byte * 8)
            assert recovered in suffixes, f"start_byte={start_byte}"
            assert suffixes[recovered] == count, f"start_byte={start_byte}"

    def test_unaligned_bit_offsets_yield_chunk_aligned_suffix(self):
        codec, data, payload = self._payload()
        suffixes = {data[k * self.CHUNK :] for k in range(self.CHUNKS + 1)}
        midpoint = (len(payload) // 2) * 8
        for bit in range(midpoint, midpoint + 8):
            recovered, _ = codec.decode_from(payload, bit)
            assert recovered in suffixes, f"start_bit={bit}"

    def test_later_starts_recover_monotonically_less(self):
        codec, data, payload = self._payload()
        counts = [
            codec.decode_from(payload, start_byte * 8)[1]
            for start_byte in range(0, len(payload), 211)
        ]
        assert counts[0] == self.CHUNKS
        assert all(a >= b for a, b in zip(counts, counts[1:]))
