"""Cross-codec invariants: every registered codec on every corpus class,
plus the qualitative relationships the paper's Figure 1 table asserts."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import available_codecs, get_codec

# The lossy codecs only accept float64 payloads and are not lossless;
# they have their own suite (test_lossy.py).
ALL_CODECS = sorted(
    name for name in available_codecs() if get_codec(name).family != "lossy"
)
FAST_CODECS = [c for c in ALL_CODECS if not c.startswith("arithmetic")]


@pytest.mark.parametrize("name", ALL_CODECS)
def test_roundtrip_all_codecs_all_corpora(name, corpus):
    codec = get_codec(name)
    for label, data in corpus.items():
        sample = data[:8192] if name.startswith("arithmetic") else data
        assert codec.decompress(codec.compress(sample)) == sample, (name, label)


@pytest.mark.parametrize("name", ALL_CODECS)
def test_compress_is_deterministic(name, commercial_block):
    codec = get_codec(name)
    sample = commercial_block[:8192]
    assert codec.compress(sample) == codec.compress(sample)


@pytest.mark.parametrize("name", [c for c in ALL_CODECS if c != "none"])
def test_no_catastrophic_expansion(name, random_block):
    codec = get_codec(name)
    sample = random_block[:8192]
    # LZW inherently emits 9-14 bit codes for ~1.4-byte phrases on random
    # data (classic `compress` behaved the same); everything else must stay
    # near 1:1.
    bound = 1.5 if name == "lzw" else 1.2
    assert len(codec.compress(sample)) < len(sample) * bound + 1024


def test_figure1_compression_efficiency_ordering(commercial_block):
    """BW excellent > LZ good > Huffman/arithmetic poor on repetitive data."""
    ratios = {
        name: get_codec(name).ratio(commercial_block)
        for name in ("burrows-wheeler", "lempel-ziv", "huffman")
    }
    assert ratios["burrows-wheeler"] < ratios["lempel-ziv"] < ratios["huffman"]


def test_low_entropy_entropy_coders_work(lowentropy_block):
    """Figure 1: Huffman/arithmetic excellent on low-entropy data."""
    sample = lowentropy_block[:8192]
    assert get_codec("huffman").ratio(sample) < 0.5
    assert get_codec("arithmetic").ratio(sample) < 0.5


def test_lempel_ziv_poor_on_low_entropy_without_repeats():
    """Figure 1: LZ 'Poor' on low entropy *without* string repetition."""
    import random

    rng = random.Random(17)
    # i.i.d. skewed bytes: low entropy but few long exact repeats
    data = bytes(rng.choices(range(16), weights=[50] + [3] * 15, k=16384))
    lz = get_codec("lempel-ziv").ratio(data)
    huff = get_codec("huffman").ratio(data)
    assert huff < lz + 0.15  # entropy coding at least competitive here


@given(st.binary(min_size=0, max_size=1500))
@settings(max_examples=25, deadline=None)
def test_roundtrip_property_all_fast_codecs(data):
    for name in FAST_CODECS:
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data, name
