"""Unit tests for LEB128 varints."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression.base import CorruptStreamError
from repro.compression.varint import (
    read_canonical_varint,
    read_varint,
    varint_size,
    write_varint,
)


class TestWriteVarint:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, b"\x00"),
            (1, b"\x01"),
            (127, b"\x7f"),
            (128, b"\x80\x01"),
            (300, b"\xac\x02"),
            (16384, b"\x80\x80\x01"),
        ],
    )
    def test_known_encodings(self, value, expected):
        buffer = bytearray()
        write_varint(buffer, value)
        assert bytes(buffer) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(bytearray(), -1)

    def test_appends_to_existing_buffer(self):
        buffer = bytearray(b"xy")
        write_varint(buffer, 5)
        assert bytes(buffer) == b"xy\x05"


class TestReadVarint:
    def test_reads_at_offset(self):
        buffer = bytearray(b"\xff")
        write_varint(buffer, 300)
        value, offset = read_varint(buffer, 1)
        assert value == 300
        assert offset == 3

    def test_truncated_raises(self):
        with pytest.raises(CorruptStreamError):
            read_varint(b"\x80", 0)

    def test_empty_raises(self):
        with pytest.raises(CorruptStreamError):
            read_varint(b"", 0)

    def test_oversized_raises(self):
        with pytest.raises(CorruptStreamError):
            read_varint(b"\xff" * 11, 0)


class TestReadCanonicalVarint:
    def test_accepts_canonical_encodings(self):
        for value in (0, 1, 127, 128, 300, 2**40):
            buffer = bytearray()
            write_varint(buffer, value)
            assert read_canonical_varint(buffer, 0) == (value, len(buffer))

    @pytest.mark.parametrize(
        "overlong",
        [b"\x80\x00", b"\x81\x00", b"\xff\x00", b"\x80\x80\x00"],
    )
    def test_rejects_overlong_encodings(self, overlong):
        # Each decodes fine permissively but wastes a terminating 0x00
        # continuation — a corrupted length must not alias to a shorter
        # valid value.
        read_varint(overlong, 0)
        with pytest.raises(CorruptStreamError, match="non-canonical"):
            read_canonical_varint(overlong, 0)

    def test_truncated_still_raises(self):
        with pytest.raises(CorruptStreamError):
            read_canonical_varint(b"\x80", 0)


class TestVarintSize:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_size_matches_encoding(self, value):
        buffer = bytearray()
        write_varint(buffer, value)
        assert varint_size(value) == len(buffer)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            varint_size(-3)


@given(st.integers(min_value=0, max_value=2**62))
def test_roundtrip_property(value):
    buffer = bytearray()
    write_varint(buffer, value)
    decoded, offset = read_varint(buffer, 0)
    assert decoded == value
    assert offset == len(buffer)
