"""Integration test: the live reproduction report."""

import pytest

from repro.experiments import ReplayConfig, generate_report


@pytest.fixture(scope="module")
def report():
    small = ReplayConfig(block_count=16, production_interval=2.5)
    headline = ReplayConfig(
        block_count=16, production_interval=0.0, trace_offset=20.0, pipelined=True
    )
    return generate_report(
        replay_config=small, headline_config=headline, link_transfers=80
    )


class TestGenerateReport:
    def test_contains_every_figure_section(self, report):
        for heading in (
            "Figure 1",
            "Figures 2-3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figures 8-10",
            "Figures 11-12",
            "Headline",
        ):
            assert heading in report

    def test_markdown_tables_well_formed(self, report):
        lines = report.splitlines()
        for index, line in enumerate(lines):
            if line.startswith("|") and set(line.strip("|")) <= {"-", "|"}:
                header = lines[index - 1]
                assert header.count("|") == line.count("|")

    def test_paper_reference_numbers_present(self, report):
        assert "10.7142" in report
        assert "29.1388" in report

    def test_methods_named(self, report):
        for method in ("burrows-wheeler", "lempel-ziv", "huffman", "arithmetic"):
            assert method in report
