"""Integration tests: the experiment harnesses reproduce the paper's shapes.

Each test regenerates (a scaled-down version of) a figure and asserts the
qualitative claims the paper makes about it — who wins, in which regime,
and in what direction the selector moves.
"""

import pytest

from repro.experiments import (
    FIG8_CONFIG,
    HEADLINE_CONFIG,
    PAPER_FIG5,
    ReplayConfig,
    commercial_blocks,
    figure2_ratios,
    figure4_reducing_speeds,
    figure5_link_speeds,
    figure6_molecular_ratios,
    figure7_trace_series,
    figure1_rows,
    headline_comparison,
    molecular_blocks,
    run_replay,
)
from repro.core.policy import FixedPolicy


SMALL_FIG8 = ReplayConfig(block_count=64, production_interval=2.5)


class TestFigure1:
    def test_rows_cover_all_characteristics(self):
        rows = figure1_rows()
        labels = [label for label, _ in rows]
        assert "compression-time" in labels
        assert "string-repetitions" in labels
        assert len(rows) == 6


class TestFigure2:
    def test_commercial_ratio_ordering(self):
        results = figure2_ratios()
        percent = {m: r.percent for m, r in results.items()}
        # Paper: BW 34 < LZ 41 < Arith 46 ~ Huff 47
        assert percent["burrows-wheeler"] < percent["lempel-ziv"]
        assert percent["lempel-ziv"] < percent["huffman"]
        assert abs(percent["arithmetic"] - percent["huffman"]) < 8
        # all in a plausible band, nothing degenerate
        assert 15 < percent["burrows-wheeler"] < 50
        assert 45 < percent["huffman"] < 80


class TestFigure3:
    def test_time_ordering(self):
        results = figure2_ratios()
        assert (
            results["huffman"].compress_seconds
            < results["burrows-wheeler"].compress_seconds
        )
        # Arithmetic decompression is the worst of all methods (paper Fig 3).
        assert results["arithmetic"].decompress_seconds == max(
            r.decompress_seconds for r in results.values()
        )


class TestFigure4:
    def test_two_machines_ratio(self):
        speeds = figure4_reducing_speeds()
        assert set(speeds) == {"Sun-Fire-280R", "Ultra-Sparc"}
        for method in speeds["Sun-Fire-280R"]:
            fast = speeds["Sun-Fire-280R"][method]
            slow = speeds["Ultra-Sparc"][method]
            assert fast / slow == pytest.approx(1 / 0.42, rel=1e-6)

    def test_huffman_tops_arithmetic_bottoms(self):
        """The robust Figure 4 shape: Huffman's reducing speed dominates and
        arithmetic's is the worst.  (The BW-vs-LZ ordering is
        implementation-specific: our numpy BWT outruns our pure-Python LZ
        matcher, unlike the paper's C implementations — the paper-calibrated
        DEFAULT_COSTS preserve the original ordering and carry the modeled
        replays; see EXPERIMENTS.md.)"""
        speeds = figure4_reducing_speeds()["Sun-Fire-280R"]
        assert speeds["huffman"] == max(speeds.values())
        assert speeds["arithmetic"] == min(speeds.values())


class TestFigure5:
    def test_link_speeds_match_paper(self):
        measured = figure5_link_speeds(transfers=300)
        for name, (paper_speed, paper_stddev) in PAPER_FIG5.items():
            m = measured[name]
            assert m.mean_mb_per_s == pytest.approx(paper_speed, rel=0.08), name
            assert m.stddev_percent == pytest.approx(paper_stddev, rel=0.35), name

    def test_ordering(self):
        measured = figure5_link_speeds(transfers=100)
        assert (
            measured["1gbit"].mean_mb_per_s
            > measured["100mbit"].mean_mb_per_s
            > measured["1mbit"].mean_mb_per_s
            > measured["international"].mean_mb_per_s
        )


class TestFigure6:
    def test_field_signature(self):
        results = figure6_molecular_ratios(atom_count=4096)
        coords = results["coordinates"]
        types = results["type"]
        velocity = results["velocity"]
        # coordinates barely compress with any method
        assert min(r.percent for r in coords.values()) > 75
        # types compress extremely well with dictionary methods
        assert types["burrows-wheeler"].percent < 10
        assert types["lempel-ziv"].percent < 10
        # velocities sit in between
        assert (
            types["burrows-wheeler"].percent
            < velocity["burrows-wheeler"].percent
            < coords["burrows-wheeler"].percent
        )


class TestFigure7:
    def test_trace_shape(self):
        series = figure7_trace_series()
        times = [t for t, _ in series]
        levels = [c for _, c in series]
        assert times[0] == 0.0
        assert times[-1] >= 159.0
        assert levels[0] == 0
        assert max(levels) >= 10
        assert max(levels) <= 20


class TestFigures8to10:
    @pytest.fixture(scope="class")
    def replay(self):
        return run_replay(commercial_blocks(SMALL_FIG8), SMALL_FIG8)

    def test_fig8_progression(self, replay):
        """No compression while quiet; LZ/BW once load arrives."""
        codes = dict(replay.method_series())
        early = [c for t, c in codes.items() if t < 5]
        assert 1 in early  # uncompressed phase exists
        methods = [c for _, c in replay.method_series()]
        assert 2 in methods  # Lempel-Ziv used
        assert 3 in methods  # Burrows-Wheeler used under peaks

    def test_fig9_compression_times_track_method(self, replay):
        by_method = {}
        for record in replay.records:
            by_method.setdefault(record.method, []).append(record.compression_time)
        if "burrows-wheeler" in by_method and "lempel-ziv" in by_method:
            assert min(by_method["burrows-wheeler"]) > max(
                t for t in by_method["lempel-ziv"]
            ) * 1.5

    def test_fig10_compressed_blocks_smaller_when_compressing(self, replay):
        sizes = {r.method: r.compressed_size for r in replay.records}
        if "none" in sizes and "burrows-wheeler" in sizes:
            assert sizes["burrows-wheeler"] < sizes["none"] * 0.6

    def test_overall_reduction_significant(self, replay):
        """'the size reduction of the data is significant and clear'"""
        assert replay.overall_ratio < 0.7


class TestFigures11and12:
    @pytest.fixture(scope="class")
    def replay(self):
        return run_replay(molecular_blocks(SMALL_FIG8), SMALL_FIG8)

    def test_fig11_huffman_dominates_compressed_blocks(self, replay):
        counts = replay.method_counts()
        compressed = {m: c for m, c in counts.items() if m != "none"}
        if compressed:
            assert max(compressed, key=compressed.get) == "huffman"

    def test_fig11_dictionary_methods_rare_but_present(self, replay):
        counts = replay.method_counts()
        dictionary = counts.get("lempel-ziv", 0) + counts.get("burrows-wheeler", 0)
        assert dictionary < counts.get("huffman", 0) + counts.get("none", 0)

    def test_fig12_sizes_barely_shrink(self, replay):
        """Molecular data 'cannot be compressed well'."""
        assert replay.overall_ratio > 0.6


class TestHeadline:
    @pytest.fixture(scope="class")
    def rows(self):
        config = ReplayConfig(
            block_count=48,
            production_interval=0.0,
            trace_offset=20.0,
            pipelined=True,
        )
        return headline_comparison(config, baselines=["none"])

    def test_commercial_adaptive_wins_big(self, rows):
        by_key = {(r.dataset, r.policy): r for r in rows}
        adaptive = by_key[("commercial", "adaptive")].total_seconds
        none = by_key[("commercial", "fixed:none")].total_seconds
        assert none / adaptive > 1.8  # paper: 2.72x

    def test_molecular_no_benefit(self, rows):
        by_key = {(r.dataset, r.policy): r for r in rows}
        adaptive = by_key[("molecular", "adaptive")].total_seconds
        none = by_key[("molecular", "fixed:none")].total_seconds
        assert abs(none - adaptive) / none < 0.25  # paper: ~5% loss

    def test_compression_dominates_commercial_time(self, rows):
        by_key = {(r.dataset, r.policy): r for r in rows}
        assert by_key[("commercial", "adaptive")].compression_fraction > 0.4
