"""Integration: the DTSchedule-style placement time-breakdown matrix."""

import pytest

from repro.experiments.placement import (
    LINK_CLASSES,
    PLACEMENT_MODES_ORDER,
    UPSTREAM_LINK,
    placement_breakdown,
)

BLOCKS = 6


@pytest.fixture(scope="module")
def matrix():
    return placement_breakdown(total_blocks=BLOCKS)


def _cell(matrix, link, mode):
    return next(c for c in matrix if c.link == link and c.mode == mode)


class TestPlacementBreakdown:
    def test_full_matrix_shape(self, matrix):
        assert len(matrix) == len(LINK_CLASSES) * len(PLACEMENT_MODES_ORDER)
        assert {c.link for c in matrix} == set(LINK_CLASSES)
        assert UPSTREAM_LINK in LINK_CLASSES
        for cell in matrix:
            assert cell.blocks == BLOCKS
            assert sum(cell.placements.values()) == BLOCKS
            assert cell.makespan <= cell.serial_seconds * (1 + 1e-9)
            assert cell.serial_seconds == pytest.approx(
                cell.compress_seconds
                + cell.wire_seconds
                + cell.relay_seconds
                + cell.decompress_seconds
            )

    def test_forced_modes_are_pure(self, matrix):
        for link in LINK_CLASSES:
            for mode in ("producer", "raw", "consumer"):
                assert _cell(matrix, link, mode).placements == {mode: BLOCKS}

    def test_consumer_mode_has_empty_producer_bar(self, matrix):
        """The DTSchedule offload signature: no producer-side compression."""
        for link in LINK_CLASSES:
            consumer = _cell(matrix, link, "consumer")
            assert consumer.compress_seconds == 0.0
            assert consumer.relay_seconds > 0.0
            assert consumer.decompress_seconds > 0.0

    def test_raw_mode_runs_no_codec(self, matrix):
        for link in LINK_CLASSES:
            raw = _cell(matrix, link, "raw")
            assert raw.compress_seconds == 0.0
            assert raw.relay_seconds == 0.0
            assert raw.decompress_seconds == 0.0
            assert raw.wire_seconds > 0.0

    def test_auto_never_loses_to_producer(self, matrix):
        for link in LINK_CLASSES:
            producer = _cell(matrix, link, "producer")
            auto = _cell(matrix, link, "auto")
            assert auto.makespan <= producer.makespan * (1 + 1e-9), link
            assert auto.serial_seconds <= producer.serial_seconds * (1 + 1e-9), link

    def test_auto_regimes_follow_the_links(self, matrix):
        """Fast links ship raw; slow links take the consumer offload."""
        assert _cell(matrix, "1gbit", "auto").placements == {"raw": BLOCKS}
        slow = _cell(matrix, "international", "auto").placements
        assert slow.get("raw", 0) == 0

    def test_relay_bytes_match_producer_bytes(self, matrix):
        """Byte-exactness: both compressed arrangements share one CRC chain."""
        for link in LINK_CLASSES:
            producer = _cell(matrix, link, "producer")
            consumer = _cell(matrix, link, "consumer")
            assert consumer.downstream_crc32 == producer.downstream_crc32, link

    def test_deterministic(self, matrix):
        again = placement_breakdown(total_blocks=BLOCKS)
        assert [
            (c.link, c.mode, c.makespan, c.downstream_crc32) for c in again
        ] == [(c.link, c.mode, c.makespan, c.downstream_crc32) for c in matrix]

    def test_validation(self):
        with pytest.raises(ValueError):
            placement_breakdown(total_blocks=0)
        with pytest.raises(ValueError):
            placement_breakdown(total_blocks=2, interference=-0.1)
