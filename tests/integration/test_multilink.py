"""Integration tests for the §1 multi-link and CPU-load claims."""

import pytest

from repro.core import AdaptivePipeline, LzSampler
from repro.data.commercial import CommercialDataGenerator
from repro.experiments.multilink import multilink_matrix
from repro.netsim import (
    DEFAULT_COSTS,
    PAPER_LINKS,
    CpuModel,
    LoadTrace,
    SimulatedLink,
)


@pytest.fixture(scope="module")
def matrix():
    return multilink_matrix(total_blocks=12)


class TestMultilinkClaims:
    def _cell(self, matrix, link, load):
        return next(c for c in matrix if c.link == link and c.load_label == load)

    def test_intranet_utility_less_evident(self, matrix):
        """'In Intranets, however, the utility of compression is less
        evident' — the unloaded gigabit cell must show no real speedup."""
        cell = self._cell(matrix, "1gbit", "low-load")
        assert cell.speedup < 1.3
        # and the selector mostly refuses to compress there
        assert cell.adaptive_methods.get("none", 0) >= 8

    def test_international_improves_in_both_scenarios(self, matrix):
        """'significantly improve ... U.S. to an Israeli university
        machine, in both low-load and high-load usage scenarios'"""
        for load in ("low-load", "high-load"):
            assert self._cell(matrix, "international", load).speedup > 2.0

    def test_dsl_notable_advantage(self, matrix):
        """'even when using broadband links like DSL, notable performance
        advantages are attained'"""
        assert self._cell(matrix, "dsl", "low-load").speedup > 1.8

    def test_speedup_grows_as_links_slow(self, matrix):
        low = {c.link: c.speedup for c in matrix if c.load_label == "low-load"}
        assert low["1gbit"] < low["1mbit"]
        assert low["100mbit"] < low["international"]

    def test_stronger_methods_on_slower_links(self, matrix):
        fast = self._cell(matrix, "1gbit", "low-load").adaptive_methods
        slow = self._cell(matrix, "international", "low-load").adaptive_methods
        assert fast.get("burrows-wheeler", 0) == 0
        assert slow.get("burrows-wheeler", 0) > 5

    def test_auto_placement_rides_every_cell(self, matrix):
        """Each cell carries the placement-aware run: on the unloaded
        gigabit intranet the break-even model ships raw outright, and it
        never loses to uncompressed transfer anywhere."""
        for cell in matrix:
            assert sum(cell.auto_placements.values()) == 12
            assert cell.auto_seconds > 0
            assert cell.speedup_auto == pytest.approx(
                cell.uncompressed_seconds / cell.auto_seconds
            )
        fast = self._cell(matrix, "1gbit", "low-load")
        assert fast.auto_placements.get("raw", 0) == 12
        assert fast.auto_seconds <= fast.uncompressed_seconds * (1 + 1e-9)


class TestCpuLoadAdaptation:
    def test_busy_cpu_deescalates_method(self):
        """'better compression methods are used when CPU loads are low';
        when the sender CPU gets busy mid-run the selector backs off."""
        cpu = CpuModel("dynamic", speed_factor=1.0)
        pipeline = AdaptivePipeline(
            cost_model=DEFAULT_COSTS,
            cpu=cpu,
            sampler=LzSampler(cost_model=DEFAULT_COSTS, cpu=cpu),
        )
        blocks = list(CommercialDataGenerator(seed=3).stream(128 * 1024, 40))
        link = SimulatedLink(PAPER_LINKS["1mbit"], seed=1)
        cpu_trace = LoadTrace.from_pairs([(0, 0), (30, 20), (60, 0)])
        result = pipeline.run(
            blocks, link, production_interval=2.0, cpu_load=cpu_trace
        )
        strength = {"none": 0, "huffman": 1, "lempel-ziv": 2, "burrows-wheeler": 3}
        idle = [r for r in result.records if 6 < r.start_time < 28]
        busy = [r for r in result.records if 44 < r.start_time < 60]
        recovered = [r for r in result.records if r.start_time > 70]
        mean = lambda rs: sum(strength[r.method] for r in rs) / len(rs)
        assert mean(busy) < mean(idle)
        assert mean(recovered) > mean(busy)

    def test_cpu_load_requires_cpu_model(self):
        pipeline = AdaptivePipeline(cost_model=DEFAULT_COSTS)
        trace = LoadTrace.from_pairs([(0, 1)])
        with pytest.raises(ValueError):
            pipeline.run([b"x" * 2048], SimulatedLink(PAPER_LINKS["1mbit"]), cpu_load=trace)
