"""Unit tests for the simulation clocks."""

import pytest

from repro.netsim.clock import VirtualClock, WallClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_custom_start(self):
        assert VirtualClock(12.5).now() == 12.5

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == 1.75

    def test_advance_zero_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)


class TestWallClock:
    def test_monotone(self):
        clock = WallClock()
        a = clock.now()
        b = clock.now()
        assert b >= a

    def test_advance_is_noop(self):
        clock = WallClock()
        clock.advance(100.0)  # does not sleep or jump

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            WallClock().advance(-0.1)
