"""The fault-injection substrate: determinism, addressing, and recovery."""

import pytest

from repro.compression.base import CorruptStreamError
from repro.compression.framing import FrameDecoder, encode_frame
from repro.netsim.faults import (
    FAULT_KINDS,
    FaultExhaustedError,
    FaultPlan,
    FaultRule,
    FaultyLink,
    FaultyPacketLink,
    RetryPolicy,
)
from repro.netsim.link import PAPER_LINKS, SimulatedLink
from repro.netsim.rudp import PacketLink, RateControlledTransport
from repro.obs.metrics import MetricsRegistry


def make_sim_link(seed=0):
    return SimulatedLink(PAPER_LINKS["100mbit"], seed=seed)


class TestFaultRule:
    def test_exact_index_addressing(self):
        rule = FaultRule(kind="drop", index=3)
        assert rule.matches(3)
        assert not rule.matches(2)
        assert not rule.matches(4)

    def test_range_addressing_inclusive(self):
        rule = FaultRule(kind="drop", first=2, last=4)
        assert [rule.matches(i) for i in range(6)] == [
            False,
            False,
            True,
            True,
            True,
            False,
        ]

    def test_open_ended_range_and_everywhere(self):
        assert FaultRule(kind="drop", first=10).matches(10**6)
        assert not FaultRule(kind="drop", first=10).matches(9)
        assert FaultRule(kind="drop").matches(0)

    def test_rejects_unknown_kind_and_bad_params(self):
        with pytest.raises(ValueError):
            FaultRule(kind="explode")
        with pytest.raises(ValueError):
            FaultRule(kind="drop", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind="drop", index=1, first=2)
        with pytest.raises(ValueError):
            FaultRule(kind="delay")  # delay rules need delay > 0
        with pytest.raises(ValueError):
            FaultRule(kind="corrupt", xor_mask=256)

    def test_dict_round_trip(self):
        rules = [
            FaultRule(kind="drop", index=7),
            FaultRule(kind="delay", first=0, last=3, delay=0.5, probability=0.25),
            FaultRule(kind="corrupt", byte_offset=2, xor_mask=0x01),
        ]
        for rule in rules:
            assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_decide_is_deterministic_and_order_independent(self):
        def build():
            return FaultPlan(
                [FaultRule(kind="drop", probability=0.3)], seed=42, name="p"
            )

        forward = [build().decide(i).kinds for i in range(100)]
        backward = [build().decide(i).kinds for i in reversed(range(100))]
        assert forward == list(reversed(backward))
        assert any(forward)  # some fire
        assert not all(forward)  # some don't

    def test_different_seeds_differ(self):
        def fires(seed):
            plan = FaultPlan([FaultRule(kind="drop", probability=0.5)], seed=seed)
            return [plan.decide(i).dropped for i in range(64)]

        assert fires(1) != fires(2)

    def test_decision_aggregates_kinds_and_delay(self):
        plan = FaultPlan(
            [
                FaultRule(kind="delay", index=5, delay=0.25),
                FaultRule(kind="delay", index=5, delay=0.5),
                FaultRule(kind="duplicate", index=5),
            ]
        )
        decision = plan.decide(5)
        assert decision.duplicated and not decision.clean
        assert decision.delay == pytest.approx(0.75)
        assert plan.decide(6).clean

    def test_counts_accumulate(self):
        plan = FaultPlan([FaultRule(kind="drop", first=0, last=9)])
        for i in range(20):
            plan.decide(i)
        assert plan.counts["drop"] == 10
        assert plan.faults_injected == 10
        assert plan.decisions == 20
        plan.reset()
        assert plan.faults_injected == 0

    def test_corrupt_flips_exactly_one_byte_deterministically(self):
        plan = FaultPlan([], seed=9)
        data = bytes(range(64))
        mutated = plan.corrupt(data, 3)
        assert mutated != data
        assert len(mutated) == len(data)
        assert sum(a != b for a, b in zip(mutated, data)) == 1
        assert plan.corrupt(data, 3) == mutated  # same index → same damage
        assert plan.corrupt(data, 4) != mutated or True  # defined either way

    def test_corrupt_honors_byte_offset_and_mask(self):
        plan = FaultPlan([])
        rule = FaultRule(kind="corrupt", byte_offset=0, xor_mask=0x01)
        assert plan.corrupt(b"\x00\x00", 0, rule) == b"\x01\x00"
        assert plan.corrupt(b"", 0, rule) == b""

    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            [
                FaultRule(kind="drop", index=2),
                FaultRule(kind="corrupt", probability=0.1),
            ],
            seed=7,
            name="mixed",
        )
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == 7
        assert restored.name == "mixed"
        assert restored.rules == plan.rules
        path = tmp_path / "plan.json"
        plan.dump(path)
        assert FaultPlan.load(path).rules == plan.rules

    def test_all_kinds_representable(self):
        for kind in FAULT_KINDS:
            rule = FaultRule(kind=kind, delay=0.1 if kind == "delay" else 0.0)
            assert FaultPlan([rule]).decide(0).kinds == (kind,)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0
        )
        delays = policy.delays()
        assert delays == pytest.approx((0.1, 0.2, 0.4, 0.8, 1.0, 1.0, 1.0))

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3, max_delay=10.0)
        again = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3, max_delay=10.0)
        assert policy.delays() == again.delays()
        for attempt in range(1, policy.max_attempts):
            raw = min(0.1 * 2.0 ** (attempt - 1), 10.0)
            assert raw * 0.5 <= policy.backoff(attempt) <= raw * 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff(0)


class TestFaultyPacketLink:
    def test_scheduled_drop_returns_none_and_counts_as_loss(self):
        plan = FaultPlan([FaultRule(kind="drop", index=1)])
        link = FaultyPacketLink(PacketLink(make_sim_link()), plan)
        assert link.send_packet(1400) is not None
        assert link.send_packet(1400) is None
        assert link.send_packet(1400) is not None
        assert link.packets_dropped == 1
        assert link.packets_sent == 3
        assert link.packets_lost == 1
        assert link.observed_loss_rate == pytest.approx(1 / 3)

    def test_corrupt_is_loss_but_counted_separately(self):
        plan = FaultPlan([FaultRule(kind="corrupt", index=0)])
        link = FaultyPacketLink(PacketLink(make_sim_link()), plan)
        assert link.send_packet(1400) is None
        assert link.packets_corrupted == 1
        assert link.packets_dropped == 0

    def test_delay_adds_to_service_time(self):
        quiet = SimulatedLink(PAPER_LINKS["1gbit"], seed=0)
        plan = FaultPlan([FaultRule(kind="delay", index=0, delay=1.5)])
        link = FaultyPacketLink(PacketLink(quiet, seed=0), plan)
        baseline = PacketLink(SimulatedLink(PAPER_LINKS["1gbit"], seed=0), seed=0)
        delayed = link.send_packet(1400)
        plain = baseline.send_packet(1400)
        assert delayed == pytest.approx(plain + 1.5)

    def test_duplicate_sets_consumable_flag_once(self):
        plan = FaultPlan([FaultRule(kind="duplicate", index=0)])
        link = FaultyPacketLink(PacketLink(make_sim_link()), plan)
        assert link.send_packet(1400) is not None
        assert link.consume_duplicate()
        assert not link.consume_duplicate()
        assert link.packets_duplicated == 1

    def test_transport_counts_duplicate_acks_without_aimd_impact(self):
        def run(with_duplicates):
            rules = (
                [FaultRule(kind="duplicate", first=0, last=50)]
                if with_duplicates
                else []
            )
            inner = PacketLink(make_sim_link(seed=5), seed=5)
            transport = RateControlledTransport(
                FaultyPacketLink(inner, FaultPlan(rules))
            )
            report = transport.transfer(64 * 1400)
            return report, transport

        faulty_report, faulty_transport = run(True)
        clean_report, _ = run(False)
        assert faulty_report.duplicate_acks == 51
        assert faulty_transport.duplicate_acks == 51
        assert clean_report.duplicate_acks == 0
        # Duplicates never affect delivery or rate control.
        assert faulty_report.final_rate == clean_report.final_rate
        assert faulty_report.packets == clean_report.packets


class TestFaultyLink:
    def test_proxies_simulated_link_surface(self):
        inner = make_sim_link()
        link = FaultyLink(inner, FaultPlan([]))
        assert link.spec is inner.spec
        assert link.mean_transfer_time(1 << 20) == inner.mean_transfer_time(1 << 20)
        link.transfer_time(1024)
        assert link.bytes_sent == 1024
        assert link.transfers == 1

    def test_drop_recovers_with_backoff_charged(self):
        plan = FaultPlan([FaultRule(kind="drop", index=0)])
        retry = RetryPolicy(base_delay=0.5, jitter=0.0)
        link = FaultyLink(make_sim_link(seed=1), plan, retry=retry)
        clean = FaultyLink(make_sim_link(seed=1), FaultPlan([]), retry=retry)
        faulted = link.transfer_time(1 << 16)
        baseline = clean.transfer_time(1 << 16) + clean.transfer_time(1 << 16)
        # One failed send + 0.5 s backoff + one successful resend.
        assert faulted == pytest.approx(baseline + 0.5)
        assert link.retries == 1
        assert link.recovery_seconds == pytest.approx(0.5)

    def test_exhaustion_raises(self):
        plan = FaultPlan([FaultRule(kind="drop")])  # every transmission
        link = FaultyLink(
            make_sim_link(), plan, retry=RetryPolicy(max_attempts=3, jitter=0.0)
        )
        with pytest.raises(FaultExhaustedError):
            link.transfer_time(1024)
        assert link.retries == 2

    def test_registry_counters_flow(self):
        registry = MetricsRegistry()
        plan = FaultPlan([FaultRule(kind="drop", index=0)])
        link = FaultyLink(
            make_sim_link(), plan, retry=RetryPolicy(jitter=0.0), registry=registry
        )
        link.transfer_time(1024)
        assert registry.counter("repro_faults_injected_total").value(kind="drop") == 1
        assert registry.counter("repro_link_retries_total").value() == 1

    def test_deterministic_across_runs(self):
        def run():
            plan = FaultPlan(
                [FaultRule(kind="drop", probability=0.2)], seed=11
            )
            link = FaultyLink(
                make_sim_link(seed=2), plan, retry=RetryPolicy(seed=11)
            )
            times = [link.transfer_time(4096) for _ in range(50)]
            return times, link.retries, plan.counts

        first = run()
        second = run()
        assert first == second
        assert first[1] > 0  # faults actually fired


class TestPlanAgainstRealFrames:
    def test_corrupted_frame_rejected_by_crc(self):
        plan = FaultPlan([FaultRule(kind="corrupt", index=0)], seed=4)
        wire = encode_frame(b"huffman", b"payload bytes here")
        damaged = plan.corrupt(wire, 0)
        decoder = FrameDecoder()
        with pytest.raises(CorruptStreamError):
            decoder.feed(damaged)
        assert decoder.frames_rejected == 1
