"""Unit tests for the end-to-end bandwidth estimators."""

import pytest

from repro.netsim.bandwidth import EwmaBandwidthEstimator, WindowedBandwidthEstimator


class TestEwma:
    def test_no_estimate_before_observation(self):
        assert EwmaBandwidthEstimator().estimate is None

    def test_first_observation_sets_estimate(self):
        est = EwmaBandwidthEstimator()
        est.observe(1000, 1.0)
        assert est.estimate == 1000.0

    def test_converges_toward_new_regime(self):
        est = EwmaBandwidthEstimator(alpha=0.5)
        est.observe(1000, 1.0)
        for _ in range(20):
            est.observe(100, 1.0)
        assert est.estimate == pytest.approx(100.0, rel=0.01)

    def test_smooths_spikes(self):
        est = EwmaBandwidthEstimator(alpha=0.2)
        est.observe(1000, 1.0)
        est.observe(100000, 1.0)  # one spike
        assert est.estimate < 25000

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaBandwidthEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaBandwidthEstimator(alpha=1.5)

    def test_invalid_observations(self):
        est = EwmaBandwidthEstimator()
        with pytest.raises(ValueError):
            est.observe(-1, 1.0)
        with pytest.raises(ValueError):
            est.observe(10, 0.0)

    def test_reset(self):
        est = EwmaBandwidthEstimator()
        est.observe(500, 1.0)
        est.reset()
        assert est.estimate is None
        assert est.observations == 0


class TestWindowed:
    def test_no_estimate_before_observation(self):
        assert WindowedBandwidthEstimator().estimate is None

    def test_mean_over_window(self):
        est = WindowedBandwidthEstimator(window=2)
        est.observe(100, 1.0)
        est.observe(300, 1.0)
        assert est.estimate == pytest.approx(200.0)

    def test_old_samples_evicted(self):
        est = WindowedBandwidthEstimator(window=2)
        est.observe(10**6, 1.0)
        est.observe(100, 1.0)
        est.observe(100, 1.0)
        assert est.estimate == pytest.approx(100.0)

    def test_weighted_by_duration(self):
        est = WindowedBandwidthEstimator(window=4)
        est.observe(1000, 1.0)   # 1000 B/s for 1 s
        est.observe(1000, 9.0)   # slow transfer dominates elapsed time
        assert est.estimate == pytest.approx(200.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedBandwidthEstimator(window=0)

    def test_reset(self):
        est = WindowedBandwidthEstimator()
        est.observe(10, 1.0)
        est.reset()
        assert est.estimate is None
        assert est.observations == 0
