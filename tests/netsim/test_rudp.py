"""Unit tests for the rate-controlled reliable transport (IQ-RUDP model)."""

import pytest

from repro.netsim.link import make_link
from repro.netsim.rudp import (
    DEFAULT_PACKET_SIZE,
    PacketLink,
    RateControlledTransport,
)


def packet_link(loss_rate=0.0, link_name="100mbit", seed=1):
    return PacketLink(make_link(link_name, seed=seed), loss_rate=loss_rate, seed=seed)


class TestPacketLink:
    def test_lossless_delivers_everything(self):
        link = packet_link(0.0)
        for _ in range(100):
            assert link.send_packet(1400) is not None
        assert link.packets_lost == 0

    def test_loss_rate_observed(self):
        link = packet_link(0.2)
        for _ in range(5000):
            link.send_packet(1400)
        assert link.observed_loss_rate == pytest.approx(0.2, abs=0.03)

    def test_deterministic_per_seed(self):
        a = packet_link(0.3, seed=9)
        b = packet_link(0.3, seed=9)
        outcomes_a = [a.send_packet(100) is None for _ in range(50)]
        outcomes_b = [b.send_packet(100) is None for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            PacketLink(make_link("1gbit"), loss_rate=1.0)

    def test_zero_packets_zero_loss_rate(self):
        assert packet_link().observed_loss_rate == 0.0


class TestRateControlledTransport:
    def test_zero_bytes(self):
        transport = RateControlledTransport(packet_link())
        report = transport.transfer(0)
        assert report.elapsed == 0.0
        assert report.packets == 0

    def test_lossless_transfer_no_retransmissions(self):
        transport = RateControlledTransport(packet_link(0.0))
        report = transport.transfer(100_000)
        assert report.retransmissions == 0
        expected = (100_000 + DEFAULT_PACKET_SIZE - 1) // DEFAULT_PACKET_SIZE
        assert report.packets == expected
        assert report.goodput > 0

    def test_lossy_transfer_completes(self):
        transport = RateControlledTransport(packet_link(0.15, seed=3))
        report = transport.transfer(200_000)
        assert report.retransmissions > 0
        assert report.size == 200_000

    def test_loss_halves_rate(self):
        transport = RateControlledTransport(packet_link(0.9, seed=5), initial_rate=8e5)
        transport.transfer(50_000)
        assert transport.rate < 8e5

    def test_lossfree_rounds_raise_rate(self):
        transport = RateControlledTransport(
            packet_link(0.0), initial_rate=1e5, increase=1e4
        )
        transport.transfer(10_000)
        transport.transfer(10_000)
        assert transport.rate == pytest.approx(1e5 + 2e4)

    def test_rate_floor_respected(self):
        transport = RateControlledTransport(
            packet_link(0.5, seed=7), initial_rate=2e4, floor=1.5e4
        )
        for _ in range(10):
            transport.transfer(30_000)
        assert transport.rate >= 1.5e4

    def test_loss_costs_time(self):
        clean = RateControlledTransport(packet_link(0.0, seed=2), initial_rate=5e5)
        lossy = RateControlledTransport(packet_link(0.3, seed=2), initial_rate=5e5)
        assert lossy.transfer(300_000).elapsed > clean.transfer(300_000).elapsed

    def test_rate_persists_across_transfers(self):
        transport = RateControlledTransport(packet_link(0.0), initial_rate=1e5)
        transport.transfer(10_000)
        warmed = transport.rate
        report = transport.transfer(10_000)
        assert report.final_rate > warmed - 1  # monotone without loss

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), packet_size=10)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), initial_rate=0)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), floor=0)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link()).transfer(-1)

    def test_compression_reduces_wireless_transfer_time(self, commercial_block):
        """The §1 embedded/tethered scenario: compressing before the lossy
        wireless hop pays off."""
        from repro.compression import get_codec

        payload = get_codec("lempel-ziv").compress(commercial_block)
        raw = RateControlledTransport(
            packet_link(0.05, "wireless-11mbit", seed=4)
        ).transfer(len(commercial_block))
        compressed = RateControlledTransport(
            packet_link(0.05, "wireless-11mbit", seed=4)
        ).transfer(len(payload))
        assert compressed.elapsed < raw.elapsed * 0.6
