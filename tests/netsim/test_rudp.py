"""Unit tests for the rate-controlled reliable transport (IQ-RUDP model)."""

import pytest

from repro.netsim.faults import FaultPlan, FaultRule, FaultyPacketLink
from repro.netsim.link import make_link
from repro.netsim.rudp import (
    DEFAULT_PACKET_SIZE,
    PacketLink,
    RateControlledTransport,
)


def packet_link(loss_rate=0.0, link_name="100mbit", seed=1):
    return PacketLink(make_link(link_name, seed=seed), loss_rate=loss_rate, seed=seed)


class TestPacketLink:
    def test_lossless_delivers_everything(self):
        link = packet_link(0.0)
        for _ in range(100):
            assert link.send_packet(1400) is not None
        assert link.packets_lost == 0

    def test_loss_rate_observed(self):
        link = packet_link(0.2)
        for _ in range(5000):
            link.send_packet(1400)
        assert link.observed_loss_rate == pytest.approx(0.2, abs=0.03)

    def test_deterministic_per_seed(self):
        a = packet_link(0.3, seed=9)
        b = packet_link(0.3, seed=9)
        outcomes_a = [a.send_packet(100) is None for _ in range(50)]
        outcomes_b = [b.send_packet(100) is None for _ in range(50)]
        assert outcomes_a == outcomes_b

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            PacketLink(make_link("1gbit"), loss_rate=1.0)

    def test_zero_packets_zero_loss_rate(self):
        assert packet_link().observed_loss_rate == 0.0


class TestRateControlledTransport:
    def test_zero_bytes(self):
        transport = RateControlledTransport(packet_link())
        report = transport.transfer(0)
        assert report.elapsed == 0.0
        assert report.packets == 0

    def test_lossless_transfer_no_retransmissions(self):
        transport = RateControlledTransport(packet_link(0.0))
        report = transport.transfer(100_000)
        assert report.retransmissions == 0
        expected = (100_000 + DEFAULT_PACKET_SIZE - 1) // DEFAULT_PACKET_SIZE
        assert report.packets == expected
        assert report.goodput > 0

    def test_lossy_transfer_completes(self):
        transport = RateControlledTransport(packet_link(0.15, seed=3))
        report = transport.transfer(200_000)
        assert report.retransmissions > 0
        assert report.size == 200_000

    def test_loss_halves_rate(self):
        transport = RateControlledTransport(packet_link(0.9, seed=5), initial_rate=8e5)
        transport.transfer(50_000)
        assert transport.rate < 8e5

    def test_lossfree_rounds_raise_rate(self):
        transport = RateControlledTransport(
            packet_link(0.0), initial_rate=1e5, increase=1e4
        )
        transport.transfer(10_000)
        transport.transfer(10_000)
        assert transport.rate == pytest.approx(1e5 + 2e4)

    def test_rate_floor_respected(self):
        transport = RateControlledTransport(
            packet_link(0.5, seed=7), initial_rate=2e4, floor=1.5e4
        )
        for _ in range(10):
            transport.transfer(30_000)
        assert transport.rate >= 1.5e4

    def test_loss_costs_time(self):
        clean = RateControlledTransport(packet_link(0.0, seed=2), initial_rate=5e5)
        lossy = RateControlledTransport(packet_link(0.3, seed=2), initial_rate=5e5)
        assert lossy.transfer(300_000).elapsed > clean.transfer(300_000).elapsed

    def test_rate_persists_across_transfers(self):
        transport = RateControlledTransport(packet_link(0.0), initial_rate=1e5)
        transport.transfer(10_000)
        warmed = transport.rate
        report = transport.transfer(10_000)
        assert report.final_rate > warmed - 1  # monotone without loss

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), packet_size=10)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), initial_rate=0)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link(), floor=0)
        with pytest.raises(ValueError):
            RateControlledTransport(packet_link()).transfer(-1)

    def test_loss_on_final_packet_only(self):
        """The last (short) packet is the only loss: exactly one
        retransmission round, carrying exactly that packet, and the
        tail-packet size is preserved on the retransmit."""
        size = 10 * DEFAULT_PACKET_SIZE + 100  # 11 packets, short tail
        plan = FaultPlan([FaultRule(kind="drop", index=10)])  # final packet
        link = FaultyPacketLink(packet_link(0.0, seed=6), plan)
        transport = RateControlledTransport(link)
        report = transport.transfer(size)
        assert report.size == size
        assert report.retransmissions == 1
        assert report.packets == 12  # 11 + the one retransmit
        assert link.packets_dropped == 1
        # One lossy round halves once, one clean round adds once.
        assert transport.rate == pytest.approx(1e6 / 2 + 5e4)

    def test_total_loss_then_recover_aimd(self):
        """100% loss for several rounds drives the rate to the floor;
        once the faults stop, every packet still gets through and AIMD
        climbs back additively."""
        size = 4 * DEFAULT_PACKET_SIZE
        # Three full rounds of 4 packets each are annihilated (indices
        # 0-11 count retransmissions too), then the plan goes quiet.
        plan = FaultPlan([FaultRule(kind="drop", first=0, last=11)])
        link = FaultyPacketLink(packet_link(0.0, seed=8), plan)
        transport = RateControlledTransport(
            link, initial_rate=1e5, increase=1e4, floor=2e4
        )
        report = transport.transfer(size)
        assert report.size == size
        assert report.retransmissions == 12  # 3 retransmit rounds of 4
        assert report.packets == 16
        # Three halvings from 1e5 (floored at 2e4) then one clean round.
        assert transport.rate == pytest.approx(max(2e4, 1e5 / 8) + 1e4)
        # Recovery: the next transfer is fault-free and climbs.
        before = transport.rate
        clean = transport.transfer(size)
        assert clean.retransmissions == 0
        assert transport.rate == pytest.approx(before + 1e4)

    def test_duplicate_acks_counted_not_delivered_twice(self):
        size = 6 * DEFAULT_PACKET_SIZE
        plan = FaultPlan([FaultRule(kind="duplicate", first=0, last=2)])
        link = FaultyPacketLink(packet_link(0.0, seed=9), plan)
        transport = RateControlledTransport(link)
        report = transport.transfer(size)
        assert report.duplicate_acks == 3
        assert report.packets == 6  # duplicates are not extra sends
        assert report.retransmissions == 0  # nor do they trigger repair

    def test_compression_reduces_wireless_transfer_time(self, commercial_block):
        """The §1 embedded/tethered scenario: compressing before the lossy
        wireless hop pays off."""
        from repro.compression import get_codec

        payload = get_codec("lempel-ziv").compress(commercial_block)
        raw = RateControlledTransport(
            packet_link(0.05, "wireless-11mbit", seed=4)
        ).transfer(len(commercial_block))
        compressed = RateControlledTransport(
            packet_link(0.05, "wireless-11mbit", seed=4)
        ).transfer(len(payload))
        assert compressed.elapsed < raw.elapsed * 0.6
