"""Unit tests for MBone-style load traces (Figure 7 substrate)."""

import pytest

from repro.netsim.loadtrace import LoadTrace, mbone_trace


class TestLoadTrace:
    def test_from_pairs(self):
        trace = LoadTrace.from_pairs([(0, 0), (10, 5), (20, 2)])
        assert trace.connections_at(0) == 0
        assert trace.connections_at(9.99) == 0
        assert trace.connections_at(10) == 5
        assert trace.connections_at(15) == 5
        assert trace.connections_at(25) == 2  # clamped at end

    def test_before_start_clamped(self):
        trace = LoadTrace.from_pairs([(0, 3), (5, 7)])
        assert trace.connections_at(-1) == 3

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            LoadTrace.from_pairs([(1, 0), (2, 1)])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            LoadTrace.from_pairs([(0, 0), (5, 1), (5, 2)])

    def test_negative_connections_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.from_pairs([(0, -1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace(times=(), connections=())

    def test_scaled(self):
        trace = LoadTrace.from_pairs([(0, 2), (10, 4)]).scaled(4.0)
        assert trace.connections_at(0) == 8
        assert trace.connections_at(10) == 16

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.from_pairs([(0, 1)]).scaled(-1)

    def test_shifted(self):
        trace = LoadTrace.from_pairs([(0, 0), (10, 5), (20, 9)]).shifted(12.0)
        assert trace.connections_at(0) == 5
        assert trace.connections_at(8) == 9

    def test_shifted_beyond_end_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace.from_pairs([(0, 0), (10, 5)]).shifted(100.0)

    def test_sample_grid(self):
        trace = LoadTrace.from_pairs([(0, 1), (2, 3), (4, 0)])
        samples = list(trace.sample(step=1.0))
        assert samples == [(0.0, 1), (1.0, 1), (2.0, 3), (3.0, 3), (4.0, 0)]

    def test_sample_step_validation(self):
        with pytest.raises(ValueError):
            list(LoadTrace.from_pairs([(0, 1), (1, 2)]).sample(step=0))


class TestTraceIO:
    def test_save_load_roundtrip(self, tmp_path):
        trace = mbone_trace(seed=5)
        path = tmp_path / "trace.csv"
        trace.save(path)
        restored = LoadTrace.load(path)
        assert restored.times == trace.times
        assert restored.connections == trace.connections

    def test_load_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("0,3\n10,7\n")
        trace = LoadTrace.load(path)
        assert trace.connections_at(11) == 7

    def test_load_empty_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("time,connections\n")
        with pytest.raises(ValueError):
            LoadTrace.load(path)


class TestMboneTrace:
    def test_deterministic(self):
        assert mbone_trace(seed=3).times == mbone_trace(seed=3).times

    def test_figure7_shape(self):
        """Quiet start, busy middle peaking under ~20, 160 s span."""
        trace = mbone_trace(duration=160.0, seed=7, peak=19.0)
        assert trace.connections_at(0.0) == 0
        assert trace.duration == 160.0
        levels = [c for _, c in trace.sample(1.0)]
        assert max(levels) <= 19.0
        assert max(levels) >= 10.0  # a genuinely busy phase exists

    def test_lull_exists(self):
        trace = mbone_trace(duration=160.0, seed=7, peak=19.0)
        lull = [trace.connections_at(t) for t in range(95, 118)]
        busy = [trace.connections_at(t) for t in range(20, 90)]
        assert min(lull) < max(busy) / 2

    def test_too_short_duration_rejected(self):
        with pytest.raises(ValueError):
            mbone_trace(duration=10.0)

    def test_scaling_rule_x4(self):
        raw = mbone_trace(seed=1)
        scaled = raw.scaled(4.0)
        for t in (0, 40, 80, 120):
            assert scaled.connections_at(t) == raw.connections_at(t) * 4
