"""Unit tests for CPU models and codec cost calibration."""

import pytest

from repro.compression.registry import get_codec
from repro.netsim.cpu import (
    DEFAULT_COSTS,
    SUN_FIRE,
    ULTRA_SPARC,
    CodecCost,
    CodecCostModel,
    CpuModel,
    calibrate,
)


class TestCpuModel:
    def test_reference_scaling_is_identity(self):
        assert SUN_FIRE.scale_time(2.0) == 2.0
        assert SUN_FIRE.scale_speed(10.0) == 10.0

    def test_slower_machine_takes_longer(self):
        assert ULTRA_SPARC.scale_time(1.0) > 1.0
        assert ULTRA_SPARC.scale_speed(1.0) < 1.0

    def test_paper_speed_gap(self):
        """Figure 4: Sun-Fire reduces ~2.4x faster than the Ultra-Sparc."""
        ratio = SUN_FIRE.scale_speed(1.0) / ULTRA_SPARC.scale_speed(1.0)
        assert 2.0 < ratio < 3.0

    def test_load_slows_machine(self):
        loaded = CpuModel("busy", speed_factor=1.0, load=1.0)
        assert loaded.scale_time(1.0) == 2.0
        assert loaded.scale_speed(4.0) == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CpuModel("x", speed_factor=0)
        with pytest.raises(ValueError):
            CpuModel("x", speed_factor=1.0, load=-0.5)


class TestCodecCost:
    def test_validation(self):
        with pytest.raises(ValueError):
            CodecCost(compress_throughput=0, decompress_throughput=1, typical_ratio=0.5)
        with pytest.raises(ValueError):
            CodecCost(compress_throughput=1, decompress_throughput=1, typical_ratio=-1)


class TestCodecCostModel:
    def test_none_codec_auto_added(self):
        model = CodecCostModel({})
        assert model.compression_time("none", 10**9) < 0.01

    def test_unknown_codec_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_COSTS.cost("snappy")

    def test_compression_time_scales_with_size(self):
        t1 = DEFAULT_COSTS.compression_time("huffman", 1 << 20)
        t2 = DEFAULT_COSTS.compression_time("huffman", 2 << 20)
        assert t2 == pytest.approx(2 * t1)

    def test_cpu_scaling_applied(self):
        fast = DEFAULT_COSTS.compression_time("lempel-ziv", 1 << 20, SUN_FIRE)
        slow = DEFAULT_COSTS.compression_time("lempel-ziv", 1 << 20, ULTRA_SPARC)
        assert slow > 2 * fast

    def test_default_model_figure3_time_ordering(self):
        """Huffman fastest, Burrows-Wheeler slowest (Figure 3)."""
        size = 1 << 20
        times = {
            m: DEFAULT_COSTS.compression_time(m, size)
            for m in ("huffman", "lempel-ziv", "arithmetic", "burrows-wheeler")
        }
        assert times["huffman"] < times["lempel-ziv"] < times["burrows-wheeler"]
        assert times["arithmetic"] > times["lempel-ziv"]

    def test_default_model_figure4_reducing_speed_ordering(self):
        """Huffman's reducing speed tops the chart, BW/arithmetic trail."""
        speeds = {
            m: DEFAULT_COSTS.reducing_speed(m)
            for m in ("huffman", "lempel-ziv", "arithmetic", "burrows-wheeler")
        }
        assert speeds["huffman"] > speeds["lempel-ziv"]
        assert speeds["lempel-ziv"] > speeds["burrows-wheeler"]
        assert speeds["lempel-ziv"] > speeds["arithmetic"]

    def test_codecs_listing(self):
        assert "none" in DEFAULT_COSTS.codecs()


class TestCalibrate:
    def test_calibrate_measures_real_codecs(self, commercial_block):
        sample = commercial_block[:16384]
        model = calibrate(
            {"huffman": get_codec("huffman"), "lempel-ziv": get_codec("lempel-ziv")},
            sample,
        )
        huff = model.cost("huffman")
        assert huff.compress_throughput > 0
        assert huff.decompress_throughput > 0
        assert 0 < huff.typical_ratio < 1

    def test_calibrate_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            calibrate({}, b"")
