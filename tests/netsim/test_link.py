"""Unit tests for the simulated links (Figure 5 substrate)."""

import numpy as np
import pytest

from repro.netsim.link import MEGABYTE, PAPER_LINKS, LinkSpec, SimulatedLink, make_link


class TestLinkSpec:
    def test_paper_links_present(self):
        assert set(PAPER_LINKS) == {"1gbit", "100mbit", "1mbit", "international"}

    def test_paper_throughputs(self):
        assert PAPER_LINKS["1gbit"].throughput == pytest.approx(26.32094622 * MEGABYTE)
        assert PAPER_LINKS["international"].stddev_fraction == pytest.approx(0.4602)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec("x", throughput=0, stddev_fraction=0.1)
        with pytest.raises(ValueError):
            LinkSpec("x", throughput=1.0, stddev_fraction=-0.1)
        with pytest.raises(ValueError):
            LinkSpec("x", throughput=1.0, stddev_fraction=0.1, latency=-1)


class TestSimulatedLink:
    def test_transfer_time_positive(self):
        link = make_link("100mbit")
        assert link.transfer_time(128 * 1024) > 0

    def test_zero_bytes_costs_latency_only(self):
        link = make_link("1mbit")
        assert link.transfer_time(0) == PAPER_LINKS["1mbit"].latency

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            make_link("1gbit").transfer_time(-1)

    def test_deterministic_per_seed(self):
        a = make_link("international", seed=4)
        b = make_link("international", seed=4)
        times_a = [a.transfer_time(65536) for _ in range(10)]
        times_b = [b.transfer_time(65536) for _ in range(10)]
        assert times_a == times_b

    def test_mean_throughput_matches_spec(self):
        link = make_link("100mbit", seed=1)
        sizes = 128 * 1024
        speeds = [sizes / (link.transfer_time(sizes) - link.spec.latency) for _ in range(2000)]
        assert np.mean(speeds) == pytest.approx(link.spec.throughput, rel=0.02)

    def test_stddev_matches_spec(self):
        link = make_link("100mbit", seed=1)
        speeds = [link.effective_throughput() for _ in range(4000)]
        rel_std = np.std(speeds) / np.mean(speeds)
        assert rel_std == pytest.approx(0.0895, rel=0.15)

    def test_international_jitter_larger_than_lan(self):
        intl = make_link("international", seed=2)
        lan = make_link("1gbit", seed=2)
        intl_speeds = [intl.effective_throughput() for _ in range(2000)]
        lan_speeds = [lan.effective_throughput() for _ in range(2000)]
        assert (np.std(intl_speeds) / np.mean(intl_speeds)) > 10 * (
            np.std(lan_speeds) / np.mean(lan_speeds)
        )

    def test_throughput_never_collapses(self):
        link = make_link("international", seed=3)
        mean = link.spec.throughput
        for _ in range(5000):
            assert link.effective_throughput() >= mean * 0.05

    def test_congestion_slows_transfers(self):
        link = make_link("100mbit", seed=5, congestion_per_connection=0.5)
        unloaded = link.mean_transfer_time(128 * 1024, connections=0)
        loaded = link.mean_transfer_time(128 * 1024, connections=40)
        assert loaded == pytest.approx(unloaded_factor(unloaded, link, 40), rel=1e-9)
        assert loaded > unloaded * 10

    def test_counters(self):
        link = make_link("1mbit")
        link.transfer_time(1000)
        link.transfer_time(2000)
        assert link.transfers == 2
        assert link.bytes_sent == 3000

    def test_unknown_link_name(self):
        with pytest.raises(ValueError):
            make_link("carrier-pigeon")

    def test_extra_links_available(self):
        from repro.netsim.link import EXTRA_LINKS

        for name in EXTRA_LINKS:
            link = make_link(name)
            assert link.transfer_time(1000) > 0

    def test_wireless_slower_than_lan(self):
        wireless = make_link("wireless-11mbit")
        lan = make_link("100mbit")
        assert wireless.spec.throughput < lan.spec.throughput

    def test_negative_congestion_rejected(self):
        with pytest.raises(ValueError):
            SimulatedLink(PAPER_LINKS["1gbit"], congestion_per_connection=-0.1)


def unloaded_factor(unloaded: float, link: SimulatedLink, connections: float) -> float:
    spec = link.spec
    mean = spec.throughput / (1 + link.congestion_per_connection * connections)
    return spec.latency + 128 * 1024 / mean
